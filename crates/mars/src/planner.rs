//! Grid path planner for rubble-field workspaces.
//!
//! §3: "A robot like a Mars rover able to climb over rocks can have very
//! complex dynamics, with the feasibility of a motion plan depending on
//! … the geometry of the terrain. We can use Scenic to write a scenario
//! generating challenging cases for a planner to solve." This planner
//! measures the property the Fig. 22 scenario engineers: with rocks
//! impassable the route is blocked (or long); allowing climbs opens the
//! bottleneck.

use scenic_core::{Scene, SceneObject};
use scenic_geom::Vec2;
use std::collections::VecDeque;

/// Planner resolution, meters per grid cell.
const RESOLUTION: f64 = 0.1;

/// The outcome of a planning query.
#[derive(Debug, Clone, PartialEq)]
pub struct GridPlan {
    /// Waypoints from start to goal (cell centers).
    pub waypoints: Vec<Vec2>,
    /// Path length in meters.
    pub length: f64,
    /// Whether any waypoint crosses a climbable obstacle.
    pub climbs: bool,
}

struct Grid {
    half: f64,
    cells: usize,
    blocked: Vec<bool>,
    climb: Vec<bool>,
}

impl Grid {
    fn build(scene: &Scene, workspace_half: f64, allow_climb: bool, inflate: f64) -> Grid {
        let cells = (2.0 * workspace_half / RESOLUTION).ceil() as usize;
        let mut grid = Grid {
            half: workspace_half,
            cells,
            blocked: vec![false; cells * cells],
            climb: vec![false; cells * cells],
        };
        for obj in &scene.objects {
            if obj.is_ego || obj.class == "Goal" {
                continue;
            }
            let climbable = obj
                .property("climbable")
                .map(|p| matches!(p, scenic_core::PropValue::Bool(true)))
                .unwrap_or(false);
            grid.block(obj, climbable, allow_climb, inflate);
        }
        grid
    }

    fn block(&mut self, obj: &SceneObject, climbable: bool, allow_climb: bool, inflate: f64) {
        let bb = obj.bounding_box();
        let aabb = bb.aabb().inflated(inflate);
        let (i0, j0) = self.to_cell(aabb.min);
        let (i1, j1) = self.to_cell(aabb.max);
        for j in j0..=j1.min(self.cells - 1) {
            for i in i0..=i1.min(self.cells - 1) {
                let p = self.to_point(i, j);
                // Inflate by testing the cell center against the
                // inflated oriented box via distance to the original.
                let local = (p - bb.center).rotated(-bb.heading.radians());
                let inside = local.x.abs() <= bb.width / 2.0 + inflate
                    && local.y.abs() <= bb.height / 2.0 + inflate;
                if !inside {
                    continue;
                }
                let idx = j * self.cells + i;
                if climbable {
                    self.climb[idx] = true;
                    if !allow_climb {
                        self.blocked[idx] = true;
                    }
                } else {
                    self.blocked[idx] = true;
                }
            }
        }
    }

    fn to_cell(&self, p: Vec2) -> (usize, usize) {
        let i = ((p.x + self.half) / RESOLUTION)
            .floor()
            .clamp(0.0, self.cells as f64 - 1.0);
        let j = ((p.y + self.half) / RESOLUTION)
            .floor()
            .clamp(0.0, self.cells as f64 - 1.0);
        (i as usize, j as usize)
    }

    fn to_point(&self, i: usize, j: usize) -> Vec2 {
        Vec2::new(
            -self.half + (i as f64 + 0.5) * RESOLUTION,
            -self.half + (j as f64 + 0.5) * RESOLUTION,
        )
    }
}

/// Plans a path for the ego (rover) to the `Goal` object via BFS over an
/// occupancy grid. Obstacles are inflated by the rover's half-width.
/// When `allow_climb` is false, climbable rocks block like pipes.
///
/// Returns `None` when the scene has no goal or no path exists.
pub fn plan(scene: &Scene, workspace_half: f64, allow_climb: bool) -> Option<GridPlan> {
    let rover = scene.ego();
    let goal = scene.objects.iter().find(|o| o.class == "Goal")?;
    let inflate = rover.width / 2.0;
    let grid = Grid::build(scene, workspace_half, allow_climb, inflate);

    let start = grid.to_cell(rover.position_vec());
    let end = grid.to_cell(goal.position_vec());
    let n = grid.cells;
    let idx = |c: (usize, usize)| c.1 * n + c.0;
    if grid.blocked[idx(start)] || grid.blocked[idx(end)] {
        return None;
    }
    let mut prev: Vec<Option<(usize, usize)>> = vec![None; n * n];
    let mut seen = vec![false; n * n];
    let mut queue = VecDeque::new();
    queue.push_back(start);
    seen[idx(start)] = true;
    while let Some(cur) = queue.pop_front() {
        if cur == end {
            break;
        }
        let (i, j) = cur;
        let neighbors = [
            (i.wrapping_sub(1), j),
            (i + 1, j),
            (i, j.wrapping_sub(1)),
            (i, j + 1),
        ];
        for nb in neighbors {
            if nb.0 >= n || nb.1 >= n {
                continue;
            }
            let k = idx(nb);
            if seen[k] || grid.blocked[k] {
                continue;
            }
            seen[k] = true;
            prev[k] = Some(cur);
            queue.push_back(nb);
        }
    }
    if !seen[idx(end)] {
        return None;
    }
    // Reconstruct.
    let mut waypoints = Vec::new();
    let mut climbs = false;
    let mut cur = end;
    loop {
        waypoints.push(grid.to_point(cur.0, cur.1));
        if grid.climb[idx(cur)] {
            climbs = true;
        }
        match prev[idx(cur)] {
            Some(p) => cur = p,
            None => break,
        }
    }
    waypoints.reverse();
    let length = RESOLUTION * (waypoints.len().saturating_sub(1)) as f64;
    Some(GridPlan {
        waypoints,
        length,
        climbs,
    })
}

/// Whether reaching the goal requires climbing: no rock-free path
/// exists, or the rock-free detour is at least `detour_factor` times
/// longer than the climbing route.
pub fn requires_climbing(scene: &Scene, workspace_half: f64, detour_factor: f64) -> bool {
    let with_climb = plan(scene, workspace_half, true);
    let without = plan(scene, workspace_half, false);
    match (with_climb, without) {
        (Some(climbing), Some(around)) => around.length > detour_factor * climbing.length,
        (Some(_), None) => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bottleneck_pool;
    use scenic_core::sampler::Sampler;

    #[test]
    fn climbing_plan_exists() {
        for scene in bottleneck_pool() {
            let p = plan(scene, crate::WORKSPACE_HALF, true);
            assert!(p.is_some(), "no path even with climbing allowed");
            let p = p.unwrap();
            assert!(p.length > 3.0, "path too short: {}", p.length);
            // Path starts at the rover and ends near the goal.
            let start = p.waypoints.first().unwrap();
            assert!(start.distance_to(Vec2::new(0.0, -2.0)) < 0.2);
        }
    }

    #[test]
    fn bottleneck_often_forces_climbing_or_detour() {
        // Across sampled workspaces, a meaningful fraction force the
        // planner to climb (or detour substantially) — the stated
        // purpose of the Fig. 22 scenario. Checked over the shared
        // 3-scene pool; `bottleneck_climbing_statistic_full` below keeps
        // the original 10-scene statistic behind `--ignored`.
        let forced = bottleneck_pool()
            .iter()
            .filter(|scene| requires_climbing(scene, crate::WORKSPACE_HALF, 1.15))
            .count();
        assert!(forced >= 1, "no pooled workspace was challenging");
    }

    #[test]
    #[ignore = "slow full statistic (~30s debug); run with --ignored"]
    fn bottleneck_climbing_statistic_full() {
        // The original-size (n = 10) version of the statistic above.
        let w = crate::world();
        let scenario = scenic_core::compile_with_world(crate::BOTTLENECK, &w).unwrap();
        let mut forced = 0;
        let n = 10;
        for seed in 0..n {
            let scene = Sampler::new(&scenario).sample_seeded(100 + seed).unwrap();
            if requires_climbing(&scene, crate::WORKSPACE_HALF, 1.15) {
                forced += 1;
            }
        }
        assert!(forced >= 3, "only {forced}/{n} workspaces were challenging");
    }

    #[test]
    fn direct_path_blocked_by_pipes_near_bottleneck() {
        // The no-climb plan, when it exists, must not pass through the
        // bottleneck rock's cell.
        for scene in bottleneck_pool() {
            if let Some(p) = plan(scene, crate::WORKSPACE_HALF, false) {
                let rock = scene
                    .objects
                    .iter()
                    .find(|o| o.class == "BigRock")
                    .unwrap()
                    .position_vec();
                for wp in &p.waypoints {
                    assert!(wp.distance_to(rock) > 0.3, "path crossed the rock");
                }
                assert!(!p.climbs);
            }
        }
    }

    #[test]
    fn plan_none_without_goal() {
        let scenario = scenic_core::compile("ego = Object at 0 @ 0\n").unwrap();
        let scene = Sampler::new(&scenario).sample_seeded(1).unwrap();
        assert!(plan(&scene, 4.0, true).is_none());
    }
}
