//! Manifest smoke test: the Fig. 22 bottleneck scenario samples in the
//! Mars workspace and the grid planner finds a route to the goal.

use scenic_core::sampler::{Sampler, SamplerConfig};

#[test]
fn bottleneck_samples_and_plans() {
    let world = scenic_mars::world();
    let scenario =
        scenic_core::compile_with_world(scenic_mars::BOTTLENECK, &world).expect("compiles");
    let mut sampler = Sampler::new(&scenario).with_config(SamplerConfig {
        max_iterations: 100_000,
    });
    // Seed 1 accepts within a handful of iterations (seed 7, used
    // originally, needed ~3.5k interpreter runs — seconds of debug
    // time).
    let scene = sampler.sample_seeded(1).expect("samples");
    assert!(!scene.objects.is_empty());
    assert_eq!(scene.objects[0].class, "Rover");

    let plan = scenic_mars::planner::plan(&scene, scenic_mars::WORKSPACE_HALF, true);
    assert!(plan.is_some(), "planner found no route");
}
