//! Client library for `scenicd`.
//!
//! A [`Client`] wraps one daemon connection; requests are serialized on
//! it in order (open several clients for concurrency — the daemon gives
//! each connection its own handler thread). [`Client::sample`] streams:
//! the caller's callback sees every scene as its frame arrives, before
//! the batch finishes.

use crate::proto::{
    read_response, write_request, DaemonStats, ProtoError, Request, Response, SampleRequest,
};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// A failed client operation.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or encoding failure (includes the daemon dropping the
    /// connection mid-reply).
    Proto(ProtoError),
    /// The daemon replied with a structured error.
    Daemon {
        /// Stable machine-readable error class (`compile`, `sample`,
        /// `timeout`, `bad-request`, `panic`, …).
        code: String,
        /// Human-readable detail.
        message: String,
    },
    /// The daemon replied with a frame the operation didn't expect.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Proto(e) => write!(f, "{e}"),
            ClientError::Daemon { code, message } => write!(f, "daemon error [{code}]: {message}"),
            ClientError::Unexpected(what) => write!(f, "unexpected daemon reply: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Proto(ProtoError::Io(e))
    }
}

/// Result alias for client operations.
pub type ClientResult<T> = Result<T, ClientError>;

/// One connection to a running daemon.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a daemon at `addr` (e.g. `"127.0.0.1:7907"`).
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream })
    }

    /// Connects, retrying until `timeout` elapses — for racing a daemon
    /// that is still binding its socket (CI smoke tests, fixtures).
    ///
    /// # Errors
    ///
    /// The last connection failure once the deadline passes.
    pub fn connect_retry(
        addr: impl ToSocketAddrs + Clone,
        timeout: Duration,
    ) -> std::io::Result<Client> {
        let deadline = Instant::now() + timeout;
        loop {
            match Client::connect(addr.clone()) {
                Ok(client) => return Ok(client),
                Err(err) if Instant::now() >= deadline => return Err(err),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// Sends one request frame.
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn send(&mut self, request: &Request) -> ClientResult<()> {
        write_request(&mut self.stream, request)?;
        Ok(())
    }

    /// Reads one response frame; the daemon closing cleanly is an
    /// error here (every request expects at least one reply).
    ///
    /// # Errors
    ///
    /// Transport errors, including clean close.
    pub fn recv(&mut self) -> ClientResult<Response> {
        match read_response(&mut self.stream)? {
            Some(response) => Ok(response),
            None => Err(ClientError::Proto(ProtoError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            )))),
        }
    }

    /// Sends `request` and returns the single reply frame. Structured
    /// [`Response::Error`] replies come back as
    /// [`ClientError::Daemon`]. Not for `Sample` — that streams; use
    /// [`Client::sample`].
    ///
    /// # Errors
    ///
    /// Transport errors or a daemon error reply.
    pub fn request(&mut self, request: &Request) -> ClientResult<Response> {
        self.send(request)?;
        match self.recv()? {
            Response::Error { code, message } => Err(ClientError::Daemon { code, message }),
            reply => Ok(reply),
        }
    }

    /// Runs a streaming sample: `on_scene(index, text)` is called for
    /// every scene as its frame arrives, and the terminal `Done` frame's
    /// `(scenes, iterations, elapsed_ms)` is returned.
    ///
    /// # Errors
    ///
    /// Transport errors, daemon error replies (compile failures,
    /// timeouts, worker panics), or unexpected frames. Scenes already
    /// delivered to the callback stay delivered.
    pub fn sample(
        &mut self,
        request: &SampleRequest,
        mut on_scene: impl FnMut(usize, &str),
    ) -> ClientResult<(usize, usize, f64)> {
        self.send(&Request::Sample(request.clone()))?;
        loop {
            match self.recv()? {
                Response::Scene { index, text } => on_scene(index, &text),
                Response::Done {
                    scenes,
                    iterations,
                    elapsed_ms,
                } => return Ok((scenes, iterations, elapsed_ms)),
                Response::Error { code, message } => {
                    return Err(ClientError::Daemon { code, message })
                }
                other => {
                    return Err(ClientError::Unexpected(format!("{other:?}")));
                }
            }
        }
    }

    /// Convenience: collects a whole sampled batch into memory.
    ///
    /// # Errors
    ///
    /// As [`Client::sample`].
    pub fn sample_collect(&mut self, request: &SampleRequest) -> ClientResult<Vec<String>> {
        let mut scenes = Vec::new();
        self.sample(request, |_, text| scenes.push(text.to_string()))?;
        Ok(scenes)
    }

    /// Fetches daemon statistics (`detailed` adds per-scenario rows).
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn stats(&mut self, detailed: bool) -> ClientResult<DaemonStats> {
        let request = if detailed {
            Request::Stats
        } else {
            Request::Status
        };
        match self.request(&request)? {
            Response::Status(stats) => Ok(stats),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Liveness probe; returns the daemon's uptime in milliseconds.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn health(&mut self) -> ClientResult<u64> {
        match self.request(&Request::Health)? {
            Response::Health {
                ok: true,
                uptime_ms,
            } => Ok(uptime_ms),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Asks the daemon to shut down gracefully.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn shutdown(&mut self) -> ClientResult<()> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }
}
