//! Scene output rendering shared by the CLI and the daemon.
//!
//! The determinism contract requires `scenic client sample` to be
//! **byte-identical** to `scenic sample` for the same request — which
//! only holds if both sides render scenes through the same code. This
//! module is that single implementation; the CLI's `sample` command and
//! the daemon's streaming reply both call [`render_scene`].

use scenic_core::scene::Scene;

/// Renders one scene in an output format: `json` (the canonical
/// simulator-interface serialization), `gta` (GTA-V plugin JSON
/// lines), `wbt` (Webots world), or anything else as the human-readable
/// summary listing every object.
#[must_use]
pub fn render_scene(scene: &Scene, format: &str) -> String {
    match format {
        "json" => scene.to_json(),
        "gta" => scenic_sim::to_gta_json_lines(scene),
        "wbt" => scenic_sim::to_webots_world(scene),
        _ => {
            let mut out = String::new();
            for obj in &scene.objects {
                let tag = if obj.is_ego { " (ego)" } else { "" };
                out.push_str(&format!(
                    "{}{tag} at ({:.2}, {:.2}) facing {:.1}°, {:.1}×{:.1} m\n",
                    obj.class,
                    obj.position[0],
                    obj.position[1],
                    obj.heading.to_degrees(),
                    obj.width,
                    obj.height,
                ));
            }
            out
        }
    }
}

/// The file extension `--out` writes for each format.
#[must_use]
pub fn file_extension(format: &str) -> &'static str {
    match format {
        "json" => "json",
        "gta" => "gta.jsonl",
        "wbt" => "wbt",
        _ => "txt",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_lists_every_object() {
        let scenario = scenic_core::compile("ego = Object at 0 @ 0\nObject at 0 @ 5\n").unwrap();
        let scene = scenario.generate_seeded(3).unwrap();
        let summary = render_scene(&scene, "summary");
        assert_eq!(summary.lines().count(), 2);
        assert!(summary.contains("(ego)"));
        assert_eq!(render_scene(&scene, "json"), scene.to_json());
    }
}
