//! `scenicd`: a long-running scenario service.
//!
//! The Scenic pipeline's costs split sharply: compiling a scenario is
//! pure overhead that repeats across runs, and every CLI invocation
//! also pays process startup plus worker-pool spin-up. This crate moves
//! sampling behind a daemon so those costs are paid once:
//!
//! - [`proto`] — the wire protocol: length-prefixed JSON frames with a
//!   typed request/response schema and structured errors;
//! - [`server`] — the daemon: one shared
//!   [`WorkerPool`](scenic_core::WorkerPool) and
//!   [`ScenarioCache`](scenic_core::ScenarioCache) across all clients,
//!   streaming batch replies, `status`/`stats`/`health`, graceful
//!   shutdown, per-request timeouts;
//! - [`client`] — the client library the `scenic client` CLI and the
//!   `bench_load` bencher are built on;
//! - [`mod@format`] — the scene renderer shared with the CLI, which is what
//!   makes daemon output *byte-identical* to `scenic sample`.
//!
//! Determinism survives the daemon: scene `i` of a batch draws from an
//! RNG stream derived only from `(seed, i)`, so chunked streaming over
//! a socket reproduces exactly what a local run produces.

#![warn(missing_docs)]

pub mod client;
pub mod format;
pub mod proto;
pub mod server;

pub use client::{Client, ClientError, ClientResult};
pub use proto::{DaemonStats, ProtoError, Request, Response, SampleRequest};
pub use server::{Server, ServerConfig, ServerHandle, ServerState};
