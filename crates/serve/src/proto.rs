//! The `scenicd` wire protocol: length-prefixed JSON frames.
//!
//! Every message on a daemon connection — in either direction — is one
//! **frame**: a 4-byte big-endian byte length followed by that many
//! bytes of UTF-8 JSON. The JSON is an object whose `"type"` field
//! selects the message variant; unknown or ill-typed fields are
//! rejected with a typed [`ProtoError`] instead of a panic, so a
//! misbehaving client can never take the daemon down.
//!
//! ```text
//! +----------------+---------------------------+
//! | u32 BE length  | length bytes of JSON      |
//! +----------------+---------------------------+
//! ```
//!
//! Framing rules:
//!
//! - a length above [`MAX_FRAME_LEN`] is a protocol error (the peer
//!   replies with a typed error and drops the connection rather than
//!   allocating unbounded memory);
//! - a clean EOF *between* frames is a normal connection close
//!   ([`read_frame`] returns `Ok(None)`);
//! - an EOF *inside* a frame (truncated prefix or body) is an I/O
//!   error — the connection is dropped, nothing else is affected.
//!
//! 64-bit exactness: the vendored JSON tree stores numbers as `f64`,
//! which cannot represent every `u64`. Fields that must round-trip
//! exactly at full width (`seed`, `source_hash`) are therefore encoded
//! as decimal/hex *strings*; counters and sizes, which stay far below
//! 2^53 in practice, are plain JSON numbers.

use serde_json::Value;
use std::io::{Read, Write};

/// Upper bound on a single frame's byte length (16 MiB) — large enough
/// for any real scenario source or scene batch chunk, small enough that
/// a hostile length prefix cannot make the daemon allocate wildly.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// A protocol-layer failure: transport errors plus the three ways a
/// peer can send us a malformed message.
#[derive(Debug)]
pub enum ProtoError {
    /// Transport failure (includes EOF inside a frame and read
    /// timeouts).
    Io(std::io::Error),
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    FrameTooLarge {
        /// The claimed frame length.
        len: usize,
        /// The enforced maximum.
        max: usize,
    },
    /// The frame body is not valid JSON (or not UTF-8).
    BadJson(String),
    /// Valid JSON that does not match the message schema.
    BadMessage(String),
}

impl ProtoError {
    /// Stable machine-readable code, mirrored into error replies.
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            ProtoError::Io(_) => "io",
            ProtoError::FrameTooLarge { .. } => "frame-too-large",
            ProtoError::BadJson(_) => "bad-json",
            ProtoError::BadMessage(_) => "bad-message",
        }
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "i/o error: {e}"),
            ProtoError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            ProtoError::BadJson(m) => write!(f, "malformed JSON frame: {m}"),
            ProtoError::BadMessage(m) => write!(f, "malformed message: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// Result alias for protocol operations.
pub type ProtoResult<T> = Result<T, ProtoError>;

// ---------------------------------------------------------------------
// Frame layer
// ---------------------------------------------------------------------

/// Writes one frame (length prefix + body) and flushes.
///
/// # Errors
///
/// [`ProtoError::FrameTooLarge`] if the body exceeds [`MAX_FRAME_LEN`];
/// otherwise transport errors.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> ProtoResult<()> {
    if body.len() > MAX_FRAME_LEN {
        return Err(ProtoError::FrameTooLarge {
            len: body.len(),
            max: MAX_FRAME_LEN,
        });
    }
    let len = u32::try_from(body.len()).expect("frame length fits u32");
    w.write_all(&len.to_be_bytes())?;
    w.write_all(body)?;
    w.flush()?;
    Ok(())
}

/// Reads exactly `buf.len()` bytes. `allow_clean_eof` makes an EOF
/// before the *first* byte return `Ok(false)` (connection closed
/// between frames); EOF anywhere else is an `UnexpectedEof` error.
fn read_exact_or_eof(
    r: &mut impl Read,
    buf: &mut [u8],
    allow_clean_eof: bool,
) -> ProtoResult<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 && allow_clean_eof => return Ok(false),
            Ok(0) => {
                return Err(ProtoError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    Ok(true)
}

/// Reads one frame body; `Ok(None)` on a clean close between frames.
///
/// # Errors
///
/// [`ProtoError::FrameTooLarge`] on an oversized length prefix;
/// transport errors (including truncation) otherwise.
pub fn read_frame(r: &mut impl Read) -> ProtoResult<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    if !read_exact_or_eof(r, &mut prefix, true)? {
        return Ok(None);
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME_LEN {
        return Err(ProtoError::FrameTooLarge {
            len,
            max: MAX_FRAME_LEN,
        });
    }
    let mut body = vec![0u8; len];
    read_exact_or_eof(r, &mut body, false)?;
    Ok(Some(body))
}

// ---------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------

/// A batch-sampling request: compile (or hit the cache for) `source`
/// and stream `n` scenes back as they complete.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleRequest {
    /// Scenario source text (the daemon never touches the filesystem).
    pub source: String,
    /// World to compile against (`gta`, `mars`, or `bare`).
    pub world: String,
    /// Display label for per-scenario statistics (usually the file
    /// stem; purely informational).
    pub name: String,
    /// Number of scenes.
    pub n: usize,
    /// Root seed — scene `i` draws from the same index-derived stream
    /// as a local `Sampler::sample_batch`, so daemon output is
    /// byte-identical to the CLI's for the same `(scenario, seed)`.
    pub seed: u64,
    /// Worker threads on the daemon's shared pool (0 = daemon default).
    pub jobs: usize,
    /// §5.2 prune guards (acceptance-invariant either way).
    pub prune: bool,
    /// Evaluation engine (`""` = daemon default, else `ast`/`compiled`).
    pub engine: String,
    /// Per-scene output rendering: `json`, `gta`, `wbt`, or `summary`.
    pub format: String,
    /// Per-request deadline override in milliseconds (`None` = server
    /// default). On expiry the daemon sends a typed `timeout` error
    /// after the last completed chunk and keeps the connection usable.
    pub timeout_ms: Option<u64>,
}

/// A client→daemon message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Compile `source` against `world` into the shared cache (warming
    /// it for later `Sample`s) and report whether it was already there.
    Compile {
        /// Scenario source text.
        source: String,
        /// World name.
        world: String,
    },
    /// Sample a batch, streaming scenes back incrementally.
    Sample(SampleRequest),
    /// Run the static analyzer and return rendered diagnostics.
    Lint {
        /// File name used in rendered diagnostics.
        file: String,
        /// Scenario source text.
        source: String,
        /// World name.
        world: String,
    },
    /// Summary statistics (no per-scenario breakdown).
    Status,
    /// Full statistics including per-scenario scenes served.
    Stats,
    /// Liveness probe.
    Health,
    /// Graceful shutdown: finish in-flight work, stop accepting.
    Shutdown,
}

/// Daemon-side counters reported by `status` / `stats`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DaemonStats {
    /// Milliseconds since the daemon started.
    pub uptime_ms: u64,
    /// Requests handled (all types, including failed ones).
    pub requests: u64,
    /// Requests currently executing.
    pub in_flight: u64,
    /// Total scenes streamed to clients.
    pub scenes_served: u64,
    /// Compiled-scenario cache hits.
    pub cache_hits: u64,
    /// Compiled-scenario cache misses (compilations that entered it).
    pub cache_misses: u64,
    /// Scenarios currently cached.
    pub cache_entries: u64,
    /// Base directory of the on-disk artifact store (empty when the
    /// daemon runs memory-only).
    pub store_dir: String,
    /// Disk-tier loads served intact from the artifact store.
    pub disk_hits: u64,
    /// Disk-tier loads that found no usable entry (absent or corrupt).
    pub disk_misses: u64,
    /// Disk-tier entries rejected by integrity checks and rebuilt.
    pub disk_corrupt: u64,
    /// Disk-tier entries written by this daemon.
    pub disk_writes: u64,
    /// Malformed frames / messages seen (each also dropped or error-
    /// replied on its own connection without affecting others).
    pub protocol_errors: u64,
    /// Scenes served per scenario label (only in `stats` replies).
    pub per_scenario: Vec<(String, u64)>,
}

/// A daemon→client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to `Compile`.
    Compiled {
        /// Whether the scenario was already in the cache.
        cached: bool,
        /// FNV-1a content hash of the source (cache key half).
        source_hash: u64,
    },
    /// One streamed scene of a `Sample` reply, rendered in the
    /// requested format.
    Scene {
        /// Scene index within the batch.
        index: usize,
        /// Rendered scene text.
        text: String,
    },
    /// Terminal frame of a successful `Sample` reply.
    Done {
        /// Scenes streamed.
        scenes: usize,
        /// Total rejection-sampling iterations.
        iterations: usize,
        /// Wall-clock the daemon spent on the request.
        elapsed_ms: f64,
    },
    /// Reply to `Lint`.
    Lint {
        /// Diagnostics rendered rustc-style (empty when clean).
        text: String,
        /// Error-severity diagnostic count.
        errors: usize,
        /// Warning count.
        warnings: usize,
        /// Info/note count.
        infos: usize,
    },
    /// Reply to `Status` / `Stats`.
    Status(DaemonStats),
    /// Reply to `Health`.
    Health {
        /// Always true from a live daemon.
        ok: bool,
        /// Milliseconds since start.
        uptime_ms: u64,
    },
    /// Reply to `Shutdown`, sent before the daemon stops accepting.
    ShuttingDown,
    /// A structured failure: the request (or frame) could not be
    /// served. `code` is stable and machine-readable (`bad-json`,
    /// `bad-message`, `bad-request`, `compile`, `sample`, `timeout`,
    /// `frame-too-large`, `io`).
    Error {
        /// Stable machine-readable error class.
        code: String,
        /// Human-readable detail.
        message: String,
    },
}

// ---------------------------------------------------------------------
// Value encoding
// ---------------------------------------------------------------------

fn obj(fields: Vec<(&str, Value)>) -> Value {
    let mut map = serde_json::Map::new();
    for (k, v) in fields {
        map.insert(k, v);
    }
    Value::Object(map)
}

fn s(v: &str) -> Value {
    Value::String(v.to_string())
}

#[allow(clippy::cast_precision_loss)]
fn num(v: usize) -> Value {
    Value::Number(v as f64)
}

#[allow(clippy::cast_precision_loss)]
fn num64(v: u64) -> Value {
    Value::Number(v as f64)
}

/// `u64` carried as a decimal string: exact at full width (JSON numbers
/// are `f64` in the vendored tree model).
fn u64_string(v: u64) -> Value {
    Value::String(v.to_string())
}

fn bad(message: impl Into<String>) -> ProtoError {
    ProtoError::BadMessage(message.into())
}

fn get<'v>(map: &'v serde_json::Map, key: &str) -> ProtoResult<&'v Value> {
    map.get(key).ok_or_else(|| bad(format!("missing `{key}`")))
}

fn get_str(map: &serde_json::Map, key: &str) -> ProtoResult<String> {
    get(map, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| bad(format!("`{key}` must be a string")))
}

fn get_bool(map: &serde_json::Map, key: &str) -> ProtoResult<bool> {
    get(map, key)?
        .as_bool()
        .ok_or_else(|| bad(format!("`{key}` must be a boolean")))
}

fn get_usize(map: &serde_json::Map, key: &str) -> ProtoResult<usize> {
    let n = get(map, key)?
        .as_f64()
        .ok_or_else(|| bad(format!("`{key}` must be a number")))?;
    if n < 0.0 || n.fract() != 0.0 || n > 2f64.powi(53) {
        return Err(bad(format!("`{key}` must be a non-negative integer")));
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    Ok(n as usize)
}

fn get_u64(map: &serde_json::Map, key: &str) -> ProtoResult<u64> {
    Ok(get_usize(map, key)? as u64)
}

fn get_f64(map: &serde_json::Map, key: &str) -> ProtoResult<f64> {
    get(map, key)?
        .as_f64()
        .ok_or_else(|| bad(format!("`{key}` must be a number")))
}

/// Decodes a `u64` carried as a decimal string.
/// A `u64` field that defaults to 0 when absent (protocol-evolution
/// fields added after v1).
fn opt_u64(map: &serde_json::Map, key: &str) -> u64 {
    map.get(key).and_then(Value::as_u64).unwrap_or(0)
}

/// A string field that defaults to empty when absent.
fn opt_str(map: &serde_json::Map, key: &str) -> String {
    map.get(key)
        .and_then(Value::as_str)
        .unwrap_or_default()
        .to_owned()
}

fn get_u64_string(map: &serde_json::Map, key: &str) -> ProtoResult<u64> {
    get_str(map, key)?
        .parse()
        .map_err(|_| bad(format!("`{key}` must be a decimal u64 string")))
}

impl Request {
    /// Encodes to the JSON tree model.
    #[must_use]
    pub fn to_value(&self) -> Value {
        match self {
            Request::Compile { source, world } => obj(vec![
                ("type", s("compile")),
                ("source", s(source)),
                ("world", s(world)),
            ]),
            Request::Sample(r) => {
                let mut fields = vec![
                    ("type", s("sample")),
                    ("source", s(&r.source)),
                    ("world", s(&r.world)),
                    ("name", s(&r.name)),
                    ("n", num(r.n)),
                    ("seed", u64_string(r.seed)),
                    ("jobs", num(r.jobs)),
                    ("prune", Value::Bool(r.prune)),
                    ("engine", s(&r.engine)),
                    ("format", s(&r.format)),
                ];
                if let Some(t) = r.timeout_ms {
                    fields.push(("timeout_ms", num64(t)));
                }
                obj(fields)
            }
            Request::Lint {
                file,
                source,
                world,
            } => obj(vec![
                ("type", s("lint")),
                ("file", s(file)),
                ("source", s(source)),
                ("world", s(world)),
            ]),
            Request::Status => obj(vec![("type", s("status"))]),
            Request::Stats => obj(vec![("type", s("stats"))]),
            Request::Health => obj(vec![("type", s("health"))]),
            Request::Shutdown => obj(vec![("type", s("shutdown"))]),
        }
    }

    /// Decodes from the JSON tree model.
    ///
    /// # Errors
    ///
    /// [`ProtoError::BadMessage`] on schema mismatches.
    pub fn from_value(value: &Value) -> ProtoResult<Request> {
        let map = value.as_object().ok_or_else(|| bad("not a JSON object"))?;
        match get_str(map, "type")?.as_str() {
            "compile" => Ok(Request::Compile {
                source: get_str(map, "source")?,
                world: get_str(map, "world")?,
            }),
            "sample" => Ok(Request::Sample(SampleRequest {
                source: get_str(map, "source")?,
                world: get_str(map, "world")?,
                name: get_str(map, "name")?,
                n: get_usize(map, "n")?,
                seed: get_u64_string(map, "seed")?,
                jobs: get_usize(map, "jobs")?,
                prune: get_bool(map, "prune")?,
                engine: get_str(map, "engine")?,
                format: get_str(map, "format")?,
                timeout_ms: match map.get("timeout_ms") {
                    Some(_) => Some(get_u64(map, "timeout_ms")?),
                    None => None,
                },
            })),
            "lint" => Ok(Request::Lint {
                file: get_str(map, "file")?,
                source: get_str(map, "source")?,
                world: get_str(map, "world")?,
            }),
            "status" => Ok(Request::Status),
            "stats" => Ok(Request::Stats),
            "health" => Ok(Request::Health),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(bad(format!("unknown request type `{other}`"))),
        }
    }
}

impl Response {
    /// Encodes to the JSON tree model.
    #[must_use]
    pub fn to_value(&self) -> Value {
        match self {
            Response::Compiled {
                cached,
                source_hash,
            } => obj(vec![
                ("type", s("compiled")),
                ("cached", Value::Bool(*cached)),
                ("source_hash", u64_string(*source_hash)),
            ]),
            Response::Scene { index, text } => obj(vec![
                ("type", s("scene")),
                ("index", num(*index)),
                ("text", s(text)),
            ]),
            Response::Done {
                scenes,
                iterations,
                elapsed_ms,
            } => obj(vec![
                ("type", s("done")),
                ("scenes", num(*scenes)),
                ("iterations", num(*iterations)),
                ("elapsed_ms", Value::Number(*elapsed_ms)),
            ]),
            Response::Lint {
                text,
                errors,
                warnings,
                infos,
            } => obj(vec![
                ("type", s("lint")),
                ("text", s(text)),
                ("errors", num(*errors)),
                ("warnings", num(*warnings)),
                ("infos", num(*infos)),
            ]),
            Response::Status(stats) => obj(vec![
                ("type", s("status")),
                ("uptime_ms", num64(stats.uptime_ms)),
                ("requests", num64(stats.requests)),
                ("in_flight", num64(stats.in_flight)),
                ("scenes_served", num64(stats.scenes_served)),
                ("cache_hits", num64(stats.cache_hits)),
                ("cache_misses", num64(stats.cache_misses)),
                ("cache_entries", num64(stats.cache_entries)),
                ("store_dir", s(&stats.store_dir)),
                ("disk_hits", num64(stats.disk_hits)),
                ("disk_misses", num64(stats.disk_misses)),
                ("disk_corrupt", num64(stats.disk_corrupt)),
                ("disk_writes", num64(stats.disk_writes)),
                ("protocol_errors", num64(stats.protocol_errors)),
                (
                    "per_scenario",
                    Value::Array(
                        stats
                            .per_scenario
                            .iter()
                            .map(|(name, scenes)| {
                                obj(vec![("name", s(name)), ("scenes", num64(*scenes))])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::Health { ok, uptime_ms } => obj(vec![
                ("type", s("health")),
                ("ok", Value::Bool(*ok)),
                ("uptime_ms", num64(*uptime_ms)),
            ]),
            Response::ShuttingDown => obj(vec![("type", s("shutting-down"))]),
            Response::Error { code, message } => obj(vec![
                ("type", s("error")),
                ("code", s(code)),
                ("message", s(message)),
            ]),
        }
    }

    /// Decodes from the JSON tree model.
    ///
    /// # Errors
    ///
    /// [`ProtoError::BadMessage`] on schema mismatches.
    pub fn from_value(value: &Value) -> ProtoResult<Response> {
        let map = value.as_object().ok_or_else(|| bad("not a JSON object"))?;
        match get_str(map, "type")?.as_str() {
            "compiled" => Ok(Response::Compiled {
                cached: get_bool(map, "cached")?,
                source_hash: get_u64_string(map, "source_hash")?,
            }),
            "scene" => Ok(Response::Scene {
                index: get_usize(map, "index")?,
                text: get_str(map, "text")?,
            }),
            "done" => Ok(Response::Done {
                scenes: get_usize(map, "scenes")?,
                iterations: get_usize(map, "iterations")?,
                elapsed_ms: get_f64(map, "elapsed_ms")?,
            }),
            "lint" => Ok(Response::Lint {
                text: get_str(map, "text")?,
                errors: get_usize(map, "errors")?,
                warnings: get_usize(map, "warnings")?,
                infos: get_usize(map, "infos")?,
            }),
            "status" => {
                let per_scenario = get(map, "per_scenario")?
                    .as_array()
                    .ok_or_else(|| bad("`per_scenario` must be an array"))?
                    .iter()
                    .map(|row| {
                        let row = row
                            .as_object()
                            .ok_or_else(|| bad("`per_scenario` rows must be objects"))?;
                        Ok((get_str(row, "name")?, get_u64(row, "scenes")?))
                    })
                    .collect::<ProtoResult<Vec<_>>>()?;
                Ok(Response::Status(DaemonStats {
                    uptime_ms: get_u64(map, "uptime_ms")?,
                    requests: get_u64(map, "requests")?,
                    in_flight: get_u64(map, "in_flight")?,
                    scenes_served: get_u64(map, "scenes_served")?,
                    cache_hits: get_u64(map, "cache_hits")?,
                    cache_misses: get_u64(map, "cache_misses")?,
                    cache_entries: get_u64(map, "cache_entries")?,
                    // Disk-tier fields are tolerant of absence so a new
                    // client can talk to a pre-store daemon.
                    store_dir: opt_str(map, "store_dir"),
                    disk_hits: opt_u64(map, "disk_hits"),
                    disk_misses: opt_u64(map, "disk_misses"),
                    disk_corrupt: opt_u64(map, "disk_corrupt"),
                    disk_writes: opt_u64(map, "disk_writes"),
                    protocol_errors: get_u64(map, "protocol_errors")?,
                    per_scenario,
                }))
            }
            "health" => Ok(Response::Health {
                ok: get_bool(map, "ok")?,
                uptime_ms: get_u64(map, "uptime_ms")?,
            }),
            "shutting-down" => Ok(Response::ShuttingDown),
            "error" => Ok(Response::Error {
                code: get_str(map, "code")?,
                message: get_str(map, "message")?,
            }),
            other => Err(bad(format!("unknown response type `{other}`"))),
        }
    }
}

// ---------------------------------------------------------------------
// Message layer: frame + JSON + schema in one call
// ---------------------------------------------------------------------

fn encode(value: &Value) -> Vec<u8> {
    serde_json::to_string(value)
        .expect("tree value serializes")
        .into_bytes()
}

fn decode(body: &[u8]) -> ProtoResult<Value> {
    let text = std::str::from_utf8(body).map_err(|e| ProtoError::BadJson(e.to_string()))?;
    serde_json::from_str(text).map_err(|e| ProtoError::BadJson(e.to_string()))
}

/// Writes one request frame.
///
/// # Errors
///
/// Transport errors.
pub fn write_request(w: &mut impl Write, request: &Request) -> ProtoResult<()> {
    write_frame(w, &encode(&request.to_value()))
}

/// Reads one request frame; `Ok(None)` on clean close.
///
/// # Errors
///
/// Framing, JSON, or schema errors (see [`ProtoError`]).
pub fn read_request(r: &mut impl Read) -> ProtoResult<Option<Request>> {
    match read_frame(r)? {
        None => Ok(None),
        Some(body) => Ok(Some(Request::from_value(&decode(&body)?)?)),
    }
}

/// Writes one response frame.
///
/// # Errors
///
/// Transport errors.
pub fn write_response(w: &mut impl Write, response: &Response) -> ProtoResult<()> {
    write_frame(w, &encode(&response.to_value()))
}

/// Reads one response frame; `Ok(None)` on clean close.
///
/// # Errors
///
/// Framing, JSON, or schema errors (see [`ProtoError`]).
pub fn read_response(r: &mut impl Read) -> ProtoResult<Option<Response>> {
    match read_frame(r)? {
        None => Ok(None),
        Some(body) => Ok(Some(Response::from_value(&decode(&body)?)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_frame_is_an_io_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello world").unwrap();
        buf.truncate(7); // prefix + 3 of 11 body bytes
        let mut r = buf.as_slice();
        assert!(matches!(
            read_frame(&mut r).unwrap_err(),
            ProtoError::Io(e) if e.kind() == std::io::ErrorKind::UnexpectedEof
        ));
        // Truncated prefix, too.
        let mut r = &buf[..2];
        assert!(matches!(read_frame(&mut r).unwrap_err(), ProtoError::Io(_)));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut buf = u32::MAX.to_be_bytes().to_vec();
        buf.extend_from_slice(b"junk");
        let mut r = buf.as_slice();
        assert!(matches!(
            read_frame(&mut r).unwrap_err(),
            ProtoError::FrameTooLarge { .. }
        ));
    }

    #[test]
    fn garbage_json_is_a_bad_json_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{not json").unwrap();
        let mut r = buf.as_slice();
        assert!(matches!(
            read_request(&mut r).unwrap_err(),
            ProtoError::BadJson(_)
        ));
    }

    #[test]
    fn wrong_schema_is_a_bad_message_error() {
        for body in [
            "42",
            "{}",
            "{\"type\": \"nonsense\"}",
            "{\"type\": \"scene\", \"index\": \"NaN\", \"text\": \"\"}",
        ] {
            let mut buf = Vec::new();
            write_frame(&mut buf, body.as_bytes()).unwrap();
            let mut r = buf.as_slice();
            assert!(
                matches!(
                    read_response(&mut r).unwrap_err(),
                    ProtoError::BadMessage(_)
                ),
                "body `{body}` should be a schema error"
            );
        }
    }

    #[test]
    fn seed_survives_at_full_u64_width() {
        let request = Request::Sample(SampleRequest {
            source: "ego = Object\n".into(),
            world: "bare".into(),
            name: "x".into(),
            n: 1,
            seed: u64::MAX - 12345, // not representable as f64
            jobs: 1,
            prune: true,
            engine: String::new(),
            format: "json".into(),
            timeout_ms: None,
        });
        let decoded = Request::from_value(&request.to_value()).unwrap();
        assert_eq!(request, decoded);
    }
}
