//! `scenicd` — the long-running scenario daemon.
//!
//! Every `scenic sample` CLI invocation pays full process startup and
//! rebuilds the worker pool and scenario cache from scratch. The daemon
//! keeps them alive instead: one process-wide
//! [`WorkerPool::global()`](scenic_core::pool::WorkerPool::global) and
//! one [`ScenarioCache`] serve **all** clients, so the second request
//! for a scenario skips compilation entirely and no request ever pays
//! thread-spawn overhead.
//!
//! # Lifecycle
//!
//! [`Server::bind`] opens a local TCP socket (port 0 = ephemeral, for
//! test fixtures); [`Server::run`] accepts connections until a client
//! sends `shutdown`, then drains in-flight work and returns.
//! [`Server::spawn`] runs the same loop on a background thread and
//! hands back a [`ServerHandle`] — the in-process fixture the test
//! harness and the load bencher build on.
//!
//! # Concurrency & isolation
//!
//! Each connection gets its own handler thread; sampling itself fans
//! out on the shared worker pool. A malformed frame, oversized length
//! prefix, garbage JSON, or mid-stream disconnect affects only its own
//! connection: the handler replies with a typed [`Response::Error`]
//! when the socket still works, then drops the connection — the shared
//! pool and cache are never poisoned (sampler worker panics surface as
//! [`ScenicError::WorkerPanic`] errors, not thread deaths).
//!
//! # Determinism
//!
//! A `sample` request is served as chunked
//! [`Sampler::sample_batch_report_range`] calls so scenes stream back
//! as they complete — and because every scene's RNG stream derives from
//! `(seed, index)` alone, the streamed scenes are byte-identical to a
//! single-process `scenic sample` run with the same scenario, seed, and
//! format, for any chunking and any `jobs` value.

use crate::format::render_scene;
use crate::proto::{
    read_request, write_response, DaemonStats, ProtoError, Request, Response, SampleRequest,
};
use scenic_core::cache::{source_hash, ScenarioCache};
use scenic_core::compile::Engine;
use scenic_core::diag::{render_text, Diagnostic, Severity};
use scenic_core::sampler::Sampler;
use scenic_core::{analyze, ScenicError, World};
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Tunables for a daemon instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// How long a connection may sit idle (or dribble a partial frame)
    /// before the daemon drops it. Keeps a stalled or hostile client
    /// from pinning a handler thread forever.
    pub read_timeout: Duration,
    /// Default per-request sampling deadline when the request carries
    /// no `timeout_ms`. On expiry the daemon stops after the current
    /// chunk and replies with a typed `timeout` error.
    pub request_timeout: Duration,
    /// On-disk artifact store layered under the compiled-scenario
    /// cache. With a store, a relaunched daemon serves its first
    /// request from the disk tier instead of recompiling. `None`
    /// (the default) keeps the daemon memory-only.
    pub store: Option<Arc<scenic_core::ArtifactStore>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            read_timeout: Duration::from_secs(30),
            request_timeout: Duration::from_secs(120),
            store: None,
        }
    }
}

/// Shared daemon state: the compiled-scenario cache plus serving
/// counters. One instance serves every connection.
pub struct ServerState {
    cache: ScenarioCache,
    config: ServerConfig,
    started: Instant,
    requests: AtomicU64,
    protocol_errors: AtomicU64,
    scenes_served: AtomicU64,
    in_flight: AtomicU64,
    open_connections: AtomicU64,
    per_scenario: Mutex<BTreeMap<String, u64>>,
    shutdown: AtomicBool,
}

impl std::fmt::Debug for ServerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerState")
            .field("requests", &self.requests.load(Ordering::Relaxed))
            .field("in_flight", &self.in_flight.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl ServerState {
    fn new(config: ServerConfig) -> Self {
        let cache = match &config.store {
            Some(store) => ScenarioCache::with_store(Arc::clone(store)),
            None => ScenarioCache::new(),
        };
        ServerState {
            cache,
            config,
            started: Instant::now(),
            requests: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            scenes_served: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            open_connections: AtomicU64::new(0),
            per_scenario: Mutex::new(BTreeMap::new()),
            shutdown: AtomicBool::new(false),
        }
    }

    /// The shared compiled-scenario cache (exposed for tests and the
    /// load bencher).
    #[must_use]
    pub fn cache(&self) -> &ScenarioCache {
        &self.cache
    }

    fn uptime_ms(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// A statistics snapshot; `per_scenario` rows are included only
    /// when `detailed` (the `stats` request).
    #[must_use]
    pub fn stats(&self, detailed: bool) -> DaemonStats {
        DaemonStats {
            uptime_ms: self.uptime_ms(),
            requests: self.requests.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            scenes_served: self.scenes_served.load(Ordering::Relaxed),
            cache_hits: self.cache.hits() as u64,
            cache_misses: self.cache.misses() as u64,
            cache_entries: self.cache.len() as u64,
            store_dir: self
                .cache
                .store()
                .map(|store| store.base().display().to_string())
                .unwrap_or_default(),
            disk_hits: self.cache.store().map_or(0, |s| s.disk_hits()) as u64,
            disk_misses: self.cache.store().map_or(0, |s| s.disk_misses()) as u64,
            disk_corrupt: self.cache.store().map_or(0, |s| s.corrupt_entries()) as u64,
            disk_writes: self.cache.store().map_or(0, |s| s.writes()) as u64,
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            per_scenario: if detailed {
                self.per_scenario
                    .lock()
                    .expect("per-scenario counters poisoned")
                    .iter()
                    .map(|(name, scenes)| (name.clone(), *scenes))
                    .collect()
            } else {
                Vec::new()
            },
        }
    }
}

/// Decrements a counter on scope exit (connection/request accounting
/// stays correct on every path, including panics and early returns).
struct CountGuard<'c>(&'c AtomicU64);

impl<'c> CountGuard<'c> {
    fn enter(counter: &'c AtomicU64) -> Self {
        counter.fetch_add(1, Ordering::SeqCst);
        CountGuard(counter)
    }
}

impl Drop for CountGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The worlds the daemon can compile against. Worlds are deterministic
/// and immutable, so they are generated once per process and shared by
/// every daemon instance (map generation is the expensive part).
fn world_named(name: &str) -> Option<Arc<World>> {
    static GTA: OnceLock<Arc<World>> = OnceLock::new();
    static MARS: OnceLock<Arc<World>> = OnceLock::new();
    static BARE: OnceLock<Arc<World>> = OnceLock::new();
    match name {
        "gta" => Some(Arc::clone(GTA.get_or_init(|| {
            Arc::new(
                scenic_gta::World::generate(scenic_gta::MapConfig::default())
                    .core()
                    .clone(),
            )
        }))),
        "mars" => Some(Arc::clone(
            MARS.get_or_init(|| Arc::new(scenic_mars::world())),
        )),
        "bare" => Some(Arc::clone(BARE.get_or_init(|| Arc::new(World::bare())))),
        _ => None,
    }
}

/// A bound, not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds to `addr` (e.g. `"127.0.0.1:7907"`, or port `0` for an
    /// ephemeral port) with default configuration.
    ///
    /// # Errors
    ///
    /// Socket errors (address in use, permission denied, …).
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<Server> {
        Server::bind_with(addr, ServerConfig::default())
    }

    /// [`Server::bind`] with explicit [`ServerConfig`] (tests shorten
    /// the timeouts).
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn bind_with(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            state: Arc::new(ServerState::new(config)),
        })
    }

    /// The bound address (reports the actual port after binding port 0).
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared daemon state.
    #[must_use]
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Runs the accept loop on the calling thread until a client
    /// requests shutdown, then drains in-flight connections (bounded
    /// wait) and returns.
    ///
    /// # Errors
    ///
    /// Fatal listener errors only; per-connection failures are handled
    /// on their own threads.
    pub fn run(self) -> std::io::Result<()> {
        let addr = self.listener.local_addr()?;
        for stream in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let state = Arc::clone(&self.state);
            let connection_id = state.open_connections.load(Ordering::SeqCst);
            let _ = std::thread::Builder::new()
                .name(format!("scenicd-conn-{connection_id}"))
                .spawn(move || {
                    let _guard = CountGuard::enter(&state.open_connections);
                    handle_connection(&state, stream, addr);
                });
        }
        // Bounded drain: give in-flight handlers a moment to finish
        // their current reply before the process (or test) moves on.
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.state.open_connections.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        Ok(())
    }

    /// Runs the daemon on a background thread, returning a handle with
    /// the bound address — the in-process fixture used by the test
    /// harness and the load bencher.
    ///
    /// # Errors
    ///
    /// Socket or thread-spawn errors.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let state = self.state();
        let thread = std::thread::Builder::new()
            .name("scenicd-accept".into())
            .spawn(move || self.run())?;
        Ok(ServerHandle {
            addr,
            state,
            thread: Some(thread),
        })
    }
}

/// A running daemon on a background thread (see [`Server::spawn`]).
///
/// Dropping the handle shuts the daemon down (best-effort); call
/// [`ServerHandle::shutdown`] to observe the result.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl ServerHandle {
    /// The daemon's bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared daemon state (counters, cache).
    #[must_use]
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Requests graceful shutdown and joins the accept thread.
    ///
    /// # Errors
    ///
    /// Propagates the accept loop's error, if any.
    pub fn shutdown(mut self) -> std::io::Result<()> {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> std::io::Result<()> {
        let Some(thread) = self.thread.take() else {
            return Ok(());
        };
        // Ask nicely over the protocol; fall back to flag + wake so a
        // wedged socket can't make shutdown hang.
        if let Ok(mut client) = crate::client::Client::connect(self.addr) {
            let _ = client.request(&Request::Shutdown);
        } else {
            self.state.shutdown.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(self.addr);
        }
        thread
            .join()
            .map_err(|_| std::io::Error::other("scenicd accept thread panicked"))?
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        let _ = self.shutdown_inner();
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

/// What a handled request tells the connection loop to do next.
enum Continuation {
    /// Keep reading requests from this connection.
    KeepOpen,
    /// Stop serving this connection.
    Close,
}

/// One connection's request/reply loop. Protocol errors are reported
/// with a typed error frame (when the socket still accepts writes) and
/// close only this connection.
fn handle_connection(state: &ServerState, mut stream: TcpStream, listener_addr: SocketAddr) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(state.config.read_timeout));
    loop {
        match read_request(&mut stream) {
            Ok(None) => break, // clean close
            Ok(Some(request)) => {
                state.requests.fetch_add(1, Ordering::Relaxed);
                let _guard = CountGuard::enter(&state.in_flight);
                match handle_request(state, &mut stream, request, listener_addr) {
                    Ok(Continuation::KeepOpen) => {}
                    Ok(Continuation::Close) | Err(_) => break,
                }
            }
            Err(err) => {
                state.protocol_errors.fetch_add(1, Ordering::Relaxed);
                // Frame-level garbage leaves the stream position
                // unknowable, so always close — but send the typed
                // error first when the transport itself still works.
                if !matches!(err, ProtoError::Io(_)) {
                    let _ = write_response(
                        &mut stream,
                        &Response::Error {
                            code: err.code().to_string(),
                            message: err.to_string(),
                        },
                    );
                }
                break;
            }
        }
    }
}

/// Serves one request. `Err` means the transport died mid-reply (the
/// connection is abandoned); request-level failures are `Ok` replies
/// carrying [`Response::Error`].
fn handle_request(
    state: &ServerState,
    stream: &mut TcpStream,
    request: Request,
    listener_addr: SocketAddr,
) -> Result<Continuation, ProtoError> {
    match request {
        Request::Health => {
            write_response(
                stream,
                &Response::Health {
                    ok: true,
                    uptime_ms: state.uptime_ms(),
                },
            )?;
            Ok(Continuation::KeepOpen)
        }
        Request::Status => {
            write_response(stream, &Response::Status(state.stats(false)))?;
            Ok(Continuation::KeepOpen)
        }
        Request::Stats => {
            write_response(stream, &Response::Status(state.stats(true)))?;
            Ok(Continuation::KeepOpen)
        }
        Request::Shutdown => {
            write_response(stream, &Response::ShuttingDown)?;
            state.shutdown.store(true, Ordering::SeqCst);
            // Wake the accept loop so it observes the flag.
            let _ = TcpStream::connect(listener_addr);
            Ok(Continuation::Close)
        }
        Request::Compile { source, world } => {
            let reply = match compile_cached(state, &world, &source) {
                Ok((_, cached)) => Response::Compiled {
                    cached,
                    source_hash: source_hash(&source),
                },
                Err(reply) => reply,
            };
            write_response(stream, &reply)?;
            Ok(Continuation::KeepOpen)
        }
        Request::Lint {
            file,
            source,
            world,
        } => {
            let reply = match world_named(&world) {
                None => Response::Error {
                    code: "bad-request".into(),
                    message: format!("unknown world `{world}` (expected gta, mars, or bare)"),
                },
                Some(w) => match state.cache.get_or_compile(&world, &source, &w) {
                    Ok(scenario) => lint_reply(&analyze(&scenario), &file, &source),
                    // Compile failures are themselves diagnostics: lint
                    // reports them instead of erroring.
                    Err(err) => lint_reply(&[Diagnostic::from_error(&err)], &file, &source),
                },
            };
            write_response(stream, &reply)?;
            Ok(Continuation::KeepOpen)
        }
        Request::Sample(request) => {
            handle_sample(state, stream, &request)?;
            Ok(Continuation::KeepOpen)
        }
    }
}

/// Renders a lint reply from diagnostics.
fn lint_reply(diags: &[Diagnostic], file: &str, source: &str) -> Response {
    let count = |s: Severity| diags.iter().filter(|d| d.severity == s).count();
    Response::Lint {
        text: render_text(diags, file, source),
        errors: count(Severity::Error),
        warnings: count(Severity::Warning),
        infos: count(Severity::Info),
    }
}

/// Compiles through the shared cache. The `bool` is "was already
/// cached"; failures come back as ready-to-send error replies.
// The `Err` is a ready-to-send `Response` (large because of the
// `Status(DaemonStats)` variant); it's written to the wire once on the
// cold failure path, never propagated.
#[allow(clippy::result_large_err)]
fn compile_cached(
    state: &ServerState,
    world_name: &str,
    source: &str,
) -> Result<(Arc<scenic_core::Scenario>, bool), Response> {
    let Some(world) = world_named(world_name) else {
        return Err(Response::Error {
            code: "bad-request".into(),
            message: format!("unknown world `{world_name}` (expected gta, mars, or bare)"),
        });
    };
    let hits_before = state.cache.hits();
    match state.cache.get_or_compile(world_name, source, &world) {
        Ok(scenario) => Ok((scenario, state.cache.hits() > hits_before)),
        Err(err) => Err(Response::Error {
            code: "compile".into(),
            message: err.to_string(),
        }),
    }
}

/// Serves one `sample` request: compile via the shared cache, then
/// stream scenes back chunk by chunk as they complete. The scenes are
/// byte-identical to a local `sample_batch` with the same seed —
/// chunked ranged sampling reproduces exactly the full batch.
fn handle_sample(
    state: &ServerState,
    stream: &mut TcpStream,
    request: &SampleRequest,
) -> Result<(), ProtoError> {
    let started = Instant::now();
    let scenario = match compile_cached(state, &request.world, &request.source) {
        Ok((scenario, _)) => scenario,
        Err(reply) => return write_response(stream, &reply),
    };
    let engine = if request.engine.is_empty() {
        Engine::default()
    } else {
        match request.engine.parse::<Engine>() {
            Ok(engine) => engine,
            Err(message) => {
                return write_response(
                    stream,
                    &Response::Error {
                        code: "bad-request".into(),
                        message,
                    },
                )
            }
        }
    };
    let jobs = if request.jobs == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        request.jobs
    };
    let deadline = started
        + request
            .timeout_ms
            .map_or(state.config.request_timeout, Duration::from_millis);

    let mut sampler = Sampler::new(&scenario)
        .with_seed(request.seed)
        .with_engine(engine);
    if request.prune {
        sampler = sampler.with_pruning();
    }

    // Chunked streaming: a chunk per `jobs` scenes keeps all workers
    // busy while delivering results incrementally.
    let chunk = jobs.max(1);
    let mut sent = 0;
    while sent < request.n {
        let count = chunk.min(request.n - sent);
        match sampler.sample_batch_report_range(sent, count, jobs) {
            Ok(report) => {
                for (offset, scene) in report.scenes.iter().enumerate() {
                    write_response(
                        stream,
                        &Response::Scene {
                            index: sent + offset,
                            text: render_scene(scene, &request.format),
                        },
                    )?;
                }
            }
            Err(err) => {
                // Structured failure — the daemon keeps serving. This
                // covers scenario errors, exhausted budgets, AND
                // sampler worker panics (ScenicError::WorkerPanic).
                return write_response(
                    stream,
                    &Response::Error {
                        code: match err {
                            ScenicError::WorkerPanic { .. } => "panic".into(),
                            _ => "sample".into(),
                        },
                        message: err.to_string(),
                    },
                );
            }
        }
        sent += count;
        if sent < request.n && Instant::now() > deadline {
            return write_response(
                stream,
                &Response::Error {
                    code: "timeout".into(),
                    message: format!(
                        "request deadline exceeded after {sent} of {} scenes",
                        request.n
                    ),
                },
            );
        }
    }

    state
        .scenes_served
        .fetch_add(sent as u64, Ordering::Relaxed);
    let label = if request.name.is_empty() {
        format!("{:016x}", source_hash(&request.source))
    } else {
        request.name.clone()
    };
    *state
        .per_scenario
        .lock()
        .expect("per-scenario counters poisoned")
        .entry(label)
        .or_insert(0) += sent as u64;

    let stats = sampler.stats();
    write_response(
        stream,
        &Response::Done {
            scenes: stats.scenes,
            iterations: stats.iterations,
            elapsed_ms: started.elapsed().as_secs_f64() * 1000.0,
        },
    )
}
