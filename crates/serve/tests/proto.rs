//! Property tests for the `scenicd` wire protocol: arbitrary requests
//! and responses survive the codec byte-exactly, even when the reader
//! sees the stream in adversarially small pieces (frame boundaries
//! split across partial reads — exactly what a TCP socket does).

use proptest::prelude::*;
use scenic_serve::proto::{
    read_request, read_response, write_request, write_response, DaemonStats, Request, Response,
    SampleRequest,
};
use std::io::Read;

/// A reader that hands out at most `chunk` bytes per `read` call, so
/// every frame prefix and body crosses several partial reads.
struct ChunkedReader {
    data: Vec<u8>,
    pos: usize,
    chunk: usize,
}

impl ChunkedReader {
    fn new(data: Vec<u8>, chunk: usize) -> Self {
        ChunkedReader {
            data,
            pos: 0,
            chunk: chunk.max(1),
        }
    }
}

impl Read for ChunkedReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Builds one of every request variant from drawn primitives.
fn build_request(
    variant: u8,
    text: &str,
    n: usize,
    seed: u64,
    flag: bool,
    timeout: u64,
) -> Request {
    match variant % 7 {
        0 => Request::Compile {
            source: text.to_string(),
            world: "bare".into(),
        },
        1 => Request::Sample(SampleRequest {
            source: text.to_string(),
            world: "gta".into(),
            name: text.chars().rev().collect(),
            n,
            seed,
            jobs: n % 17,
            prune: flag,
            engine: if flag {
                "compiled".into()
            } else {
                String::new()
            },
            format: "json".into(),
            timeout_ms: if flag { Some(timeout) } else { None },
        }),
        2 => Request::Lint {
            file: text.chars().take(20).collect(),
            source: text.to_string(),
            world: "mars".into(),
        },
        3 => Request::Status,
        4 => Request::Stats,
        5 => Request::Health,
        _ => Request::Shutdown,
    }
}

/// Builds one of every response variant from drawn primitives.
fn build_response(variant: u8, text: &str, n: usize, seed: u64, flag: bool) -> Response {
    match variant % 8 {
        0 => Response::Compiled {
            cached: flag,
            source_hash: seed,
        },
        1 => Response::Scene {
            index: n,
            text: text.to_string(),
        },
        2 => Response::Done {
            scenes: n,
            iterations: n.wrapping_mul(3),
            // Drawn f64s may not survive the decimal formatter exactly;
            // a dyadic value does, which is what we need to test the
            // field's round-trip path.
            elapsed_ms: (n as f64) + 0.5,
        },
        3 => Response::Lint {
            text: text.to_string(),
            errors: n % 5,
            warnings: n % 3,
            infos: n % 7,
        },
        4 => Response::Status(DaemonStats {
            uptime_ms: seed % (1 << 50),
            requests: n as u64,
            in_flight: (n % 9) as u64,
            scenes_served: seed % 1_000_003,
            cache_hits: (n % 1001) as u64,
            cache_misses: (n % 13) as u64,
            cache_entries: (n % 13) as u64,
            protocol_errors: (n % 2) as u64,
            store_dir: if flag {
                format!("/tmp/store-{}", n % 17)
            } else {
                String::new()
            },
            disk_hits: (n % 19) as u64,
            disk_misses: (n % 23) as u64,
            disk_corrupt: (n % 3) as u64,
            disk_writes: (n % 29) as u64,
            per_scenario: vec![
                (text.to_string(), (n % 100) as u64),
                ("other".into(), seed % 7),
            ],
        }),
        5 => Response::Health {
            ok: flag,
            uptime_ms: seed % (1 << 50),
        },
        6 => Response::ShuttingDown,
        _ => Response::Error {
            code: "sample".into(),
            message: text.to_string(),
        },
    }
}

proptest! {
    #[test]
    fn requests_round_trip_through_split_frames(
        variant in proptest::num::u8::ANY,
        text in "[ -~\n\t]{0,120}",
        n in 0usize..100_000,
        seed in proptest::num::u64::ANY,
        flag in proptest::bool::ANY,
        timeout in 0u64..1_000_000,
        chunk in 1usize..9,
    ) {
        let request = build_request(variant, &text, n, seed, flag, timeout);
        let mut wire = Vec::new();
        write_request(&mut wire, &request).unwrap();
        let mut reader = ChunkedReader::new(wire, chunk);
        let decoded = read_request(&mut reader).unwrap().unwrap();
        prop_assert_eq!(&decoded, &request);
        prop_assert!(read_request(&mut reader).unwrap().is_none(), "clean EOF after");
    }

    #[test]
    fn responses_round_trip_through_split_frames(
        variant in proptest::num::u8::ANY,
        text in "[ -~\n\t]{0,120}",
        n in 0usize..100_000,
        seed in proptest::num::u64::ANY,
        flag in proptest::bool::ANY,
        chunk in 1usize..9,
    ) {
        let response = build_response(variant, &text, n, seed, flag);
        let mut wire = Vec::new();
        write_response(&mut wire, &response).unwrap();
        let mut reader = ChunkedReader::new(wire, chunk);
        let decoded = read_response(&mut reader).unwrap().unwrap();
        prop_assert_eq!(&decoded, &response);
    }

    #[test]
    fn back_to_back_frames_keep_their_boundaries(
        text_a in "[ -~]{0,60}",
        text_b in "[ -~\n]{0,60}",
        n in 0usize..1000,
        chunk in 1usize..7,
    ) {
        // Several frames on one stream, read through tiny chunks: each
        // read_response must stop exactly at its frame boundary.
        let frames = vec![
            Response::Scene { index: n, text: text_a.clone() },
            Response::Error { code: "timeout".into(), message: text_b.clone() },
            Response::Done { scenes: n, iterations: n, elapsed_ms: 1.0 },
        ];
        let mut wire = Vec::new();
        for frame in &frames {
            write_response(&mut wire, frame).unwrap();
        }
        let mut reader = ChunkedReader::new(wire, chunk);
        for frame in &frames {
            prop_assert_eq!(&read_response(&mut reader).unwrap().unwrap(), frame);
        }
        prop_assert!(read_response(&mut reader).unwrap().is_none());
    }

    #[test]
    fn truncation_at_any_byte_is_an_error_never_a_wrong_value(
        text in "[ -~]{0,40}",
        cut_fraction in 0.0..1.0f64,
    ) {
        let response = Response::Scene { index: 1, text: text.clone() };
        let mut wire = Vec::new();
        write_response(&mut wire, &response).unwrap();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let cut = ((wire.len() - 1) as f64 * cut_fraction) as usize;
        let mut reader = ChunkedReader::new(wire[..cut].to_vec(), 3);
        match read_response(&mut reader) {
            // Cut before the first prefix byte: a clean close.
            Ok(None) => prop_assert_eq!(cut, 0),
            // Any other cut must surface as an error...
            Err(_) => {}
            // ...never as a silently wrong or partial value.
            Ok(Some(value)) => prop_assert!(false, "truncated frame decoded: {value:?}"),
        }
    }
}
