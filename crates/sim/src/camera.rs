//! Pinhole camera model: scenes → image-space bounding boxes.
//!
//! The paper rendered scenes at 1920×1200 through GTAV and consumed them
//! via squeezeDet's detections against ground-truth boxes. This module
//! reproduces the information-bearing part of that pipeline: projecting
//! each car's oriented footprint into a pixel-space box, with depth,
//! apparent view angle, truncation, and (via [`crate::image`])
//! occlusion — everything the detection experiments depend on.

use scenic_core::SceneObject;
use scenic_geom::{Heading, Vec2};
use serde::{Deserialize, Serialize};

/// An axis-aligned box in pixel coordinates (y grows downward).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PixelBox {
    /// Left edge.
    pub x_min: f64,
    /// Top edge.
    pub y_min: f64,
    /// Right edge.
    pub x_max: f64,
    /// Bottom edge.
    pub y_max: f64,
}

impl PixelBox {
    /// Creates a box from corner coordinates (normalized so min ≤ max).
    pub fn new(x_min: f64, y_min: f64, x_max: f64, y_max: f64) -> Self {
        PixelBox {
            x_min: x_min.min(x_max),
            y_min: y_min.min(y_max),
            x_max: x_min.max(x_max),
            y_max: y_min.max(y_max),
        }
    }

    /// Box area in pixels².
    pub fn area(&self) -> f64 {
        (self.x_max - self.x_min).max(0.0) * (self.y_max - self.y_min).max(0.0)
    }

    /// Box width.
    pub fn width(&self) -> f64 {
        self.x_max - self.x_min
    }

    /// Box height.
    pub fn height(&self) -> f64 {
        self.y_max - self.y_min
    }

    /// Center point.
    pub fn center(&self) -> (f64, f64) {
        (
            (self.x_min + self.x_max) / 2.0,
            (self.y_min + self.y_max) / 2.0,
        )
    }

    /// Intersection area with another box.
    pub fn intersection_area(&self, other: &PixelBox) -> f64 {
        let w = (self.x_max.min(other.x_max) - self.x_min.max(other.x_min)).max(0.0);
        let h = (self.y_max.min(other.y_max) - self.y_min.max(other.y_min)).max(0.0);
        w * h
    }

    /// Intersection-over-union (the detection-matching metric of §6.1
    /// and Appendix D).
    pub fn iou(&self, other: &PixelBox) -> f64 {
        let inter = self.intersection_area(other);
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    /// Clips to the image rectangle; `None` if nothing remains.
    pub fn clipped(&self, width: f64, height: f64) -> Option<PixelBox> {
        let b = PixelBox {
            x_min: self.x_min.max(0.0),
            y_min: self.y_min.max(0.0),
            x_max: self.x_max.min(width),
            y_max: self.y_max.min(height),
        };
        if b.x_max - b.x_min < 1.0 || b.y_max - b.y_min < 1.0 {
            None
        } else {
            Some(b)
        }
    }

    /// Translates and scales (used by the augmentation baseline).
    pub fn transformed(&self, dx: f64, dy: f64, scale: f64) -> PixelBox {
        let (cx, cy) = self.center();
        let hw = self.width() / 2.0 * scale;
        let hh = self.height() / 2.0 * scale;
        PixelBox::new(cx + dx - hw, cy + dy - hh, cx + dx + hw, cy + dy + hh)
    }
}

/// The camera: mounted on the ego car, looking along its heading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Camera {
    /// Camera position on the ground plane.
    pub position: Vec2,
    /// View direction.
    pub heading: Heading,
    /// Image width in pixels (the paper captured 1920×1200).
    pub image_width: f64,
    /// Image height in pixels.
    pub image_height: f64,
    /// Focal length in pixels.
    pub focal: f64,
    /// Camera height above the ground, meters.
    pub camera_height: f64,
    /// Near clipping depth, meters.
    pub near: f64,
    /// Far clipping depth, meters.
    pub far: f64,
}

impl Camera {
    /// The case-study capture settings (1920×1200, ~80° horizontal FOV
    /// matching the `Car.viewAngle` default of the gtaLib library).
    pub fn gta_default(position: Vec2, heading: Heading) -> Camera {
        let image_width = 1920.0;
        let fov: f64 = 80f64.to_radians();
        Camera {
            position,
            heading,
            image_width,
            image_height: 1200.0,
            focal: image_width / 2.0 / (fov / 2.0).tan(),
            camera_height: 1.4,
            near: 1.5,
            far: 120.0,
        }
    }

    /// A camera mounted at an ego object's windshield.
    pub fn from_ego(ego: &SceneObject) -> Camera {
        Camera::gta_default(ego.position_vec(), Heading(ego.heading))
    }

    /// Transforms a world point into camera coordinates:
    /// `(lateral, depth)` with depth along the view direction.
    pub fn to_camera_frame(&self, p: Vec2) -> (f64, f64) {
        let local = (p - self.position).rotated(-self.heading.radians());
        (local.x, local.y)
    }

    /// Projects a car into a pixel box plus metadata; `None` when fully
    /// outside the frustum.
    ///
    /// The footprint corners project through a ground-plane pinhole
    /// model: columns from lateral/depth, bottom rows from
    /// `camera_height / depth`, top rows from the car body height above
    /// ground.
    pub fn project(&self, obj: &SceneObject) -> Option<Projected> {
        let bb = obj.bounding_box();
        let corners = bb.corners();
        let mut any_in_front = false;
        let mut u_min = f64::INFINITY;
        let mut u_max = f64::NEG_INFINITY;
        let mut d_min = f64::INFINITY;
        let mut d_max: f64 = 0.0;
        let body_height = body_height_for(obj);
        let cx = self.image_width / 2.0;
        let horizon = self.image_height * 0.45;
        let mut v_bottom = f64::NEG_INFINITY;
        let mut v_top = f64::INFINITY;
        for corner in corners {
            let (x, d) = self.to_camera_frame(corner);
            if d < self.near {
                continue;
            }
            any_in_front = true;
            let u = cx + self.focal * (x / d);
            u_min = u_min.min(u);
            u_max = u_max.max(u);
            d_min = d_min.min(d);
            d_max = d_max.max(d);
            v_bottom = v_bottom.max(horizon + self.focal * (self.camera_height / d));
            v_top = v_top.min(horizon + self.focal * (self.camera_height - body_height) / d);
        }
        if !any_in_front || d_min > self.far {
            return None;
        }
        let raw = PixelBox::new(u_min, v_top, u_max, v_bottom);
        let clipped = raw.clipped(self.image_width, self.image_height)?;
        let truncated = raw.area() > 0.0 && clipped.area() / raw.area() < 0.95;

        // Apparent view angle: the car's heading relative to the line of
        // sight (0 = viewed directly from behind).
        let (x, d) = self.to_camera_frame(obj.position_vec());
        let sight = Heading::of_vector((obj.position_vec() - self.position).normalized());
        let view_angle = Heading(obj.heading).angle_to(sight);
        let _ = (x, d);
        Some(Projected {
            bbox: clipped,
            depth: d_min,
            view_angle,
            truncated,
            body_height,
        })
    }
}

/// A projected car, before occlusion analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Projected {
    /// Pixel-space bounding box (clipped to the image).
    pub bbox: PixelBox,
    /// Depth of the nearest corner, meters.
    pub depth: f64,
    /// Heading relative to the line of sight, radians (0 = seen from
    /// directly behind).
    pub view_angle: f64,
    /// Whether the box was clipped by the image border.
    pub truncated: bool,
    /// Body height used for the projection, meters.
    pub body_height: f64,
}

/// Car body height above ground, by bounding-box footprint (buses are
/// tall; everything else is a sedan-ish 1.4–1.8m).
pub fn body_height_for(obj: &SceneObject) -> f64 {
    if obj.height > 8.0 {
        3.2 // bus
    } else if obj.width > 2.05 {
        1.9 // SUV / truck
    } else {
        1.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn car_at(x: f64, y: f64, heading: f64) -> SceneObject {
        SceneObject {
            id: 1,
            class: "Car".into(),
            is_ego: false,
            position: [x, y],
            heading,
            width: 1.9,
            height: 4.5,
            properties: BTreeMap::new(),
        }
    }

    fn camera() -> Camera {
        Camera::gta_default(Vec2::ZERO, Heading::NORTH)
    }

    #[test]
    fn pixel_box_iou() {
        let a = PixelBox::new(0.0, 0.0, 10.0, 10.0);
        let b = PixelBox::new(5.0, 0.0, 15.0, 10.0);
        assert!((a.iou(&b) - 50.0 / 150.0).abs() < 1e-9);
        assert_eq!(a.iou(&a), 1.0);
        let far = PixelBox::new(100.0, 100.0, 110.0, 110.0);
        assert_eq!(a.iou(&far), 0.0);
    }

    #[test]
    fn car_ahead_projects_centered() {
        let cam = camera();
        let p = cam.project(&car_at(0.0, 20.0, 0.0)).unwrap();
        let (cx, _) = p.bbox.center();
        assert!((cx - 960.0).abs() < 1.0, "center {cx}");
        assert!(!p.truncated);
        assert!((p.depth - (20.0 - 4.5 / 2.0)).abs() < 0.5);
    }

    #[test]
    fn nearer_cars_have_bigger_boxes() {
        let cam = camera();
        let near = cam.project(&car_at(0.0, 10.0, 0.0)).unwrap();
        let far = cam.project(&car_at(0.0, 40.0, 0.0)).unwrap();
        assert!(near.bbox.area() > 4.0 * far.bbox.area());
    }

    #[test]
    fn behind_camera_is_invisible() {
        let cam = camera();
        assert!(cam.project(&car_at(0.0, -20.0, 0.0)).is_none());
    }

    #[test]
    fn left_car_projects_left() {
        let cam = camera();
        let p = cam.project(&car_at(-5.0, 20.0, 0.0)).unwrap();
        let (cx, _) = p.bbox.center();
        assert!(cx < 960.0, "center {cx}");
    }

    #[test]
    fn side_view_is_wider() {
        let cam = camera();
        let rear = cam.project(&car_at(0.0, 20.0, 0.0)).unwrap();
        let side = cam.project(&car_at(0.0, 20.0, 90f64.to_radians())).unwrap();
        assert!(side.bbox.width() > 1.5 * rear.bbox.width());
    }

    #[test]
    fn view_angle_semantics() {
        let cam = camera();
        // Car facing away from the camera: view angle ~ 0.
        let away = cam.project(&car_at(0.0, 20.0, 0.0)).unwrap();
        assert!(away.view_angle.abs() < 1e-9);
        // Car facing the camera: view angle ~ 180°.
        let toward = cam
            .project(&car_at(0.0, 20.0, std::f64::consts::PI))
            .unwrap();
        assert!((toward.view_angle.abs() - std::f64::consts::PI).abs() < 1e-9);
    }

    #[test]
    fn truncation_at_frame_edge() {
        let cam = camera();
        // A car far to the side: partially out of frame.
        let p = cam.project(&car_at(-16.5, 20.0, 0.0));
        if let Some(p) = p {
            assert!(p.truncated);
        }
    }

    #[test]
    fn clipping() {
        let b = PixelBox::new(-10.0, -10.0, 50.0, 50.0);
        let c = b.clipped(1920.0, 1200.0).unwrap();
        assert_eq!(c.x_min, 0.0);
        assert_eq!(c.y_min, 0.0);
        let out = PixelBox::new(-100.0, 0.0, -10.0, 50.0);
        assert!(out.clipped(1920.0, 1200.0).is_none());
    }

    #[test]
    fn rotated_camera_tracks_heading() {
        // Camera facing West sees a car placed to the West.
        let cam = Camera::gta_default(Vec2::ZERO, Heading::from_degrees(90.0));
        let p = cam
            .project(&car_at(-20.0, 0.0, 90f64.to_radians()))
            .unwrap();
        let (cx, _) = p.bbox.center();
        assert!((cx - 960.0).abs() < 1.0);
    }
}
