//! Simulator interface layers: scene → simulator input format.
//!
//! §1 of the paper: using Scenic with a simulator requires "writing an
//! interface layer converting the configurations output by Scenic into
//! the simulator's input format". The paper built two: a DeepGTAV-based
//! plugin ("the plugin calls internal functions of GTAV to create cars
//! with the desired positions, colors, etc., as well as to set the
//! camera position, time of day, and weather", §6.1) and a Webots
//! interface for the Mars-rover domain (§3). This module emits both
//! formats from a [`Scene`]:
//!
//! - [`to_gta_commands`]: the ordered command list a DeepGTAV-style
//!   plugin would execute (JSON lines);
//! - [`to_webots_world`]: a Webots `.wbt`-style world file with one
//!   node per object.

use scenic_core::{PropValue, Scene, SceneObject};

/// One command for a DeepGTAV-style plugin.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
#[serde(tag = "command", rename_all = "snake_case")]
pub enum GtaCommand {
    /// Set the time of day.
    SetTime {
        /// Hour (0–23).
        hour: u32,
        /// Minute (0–59).
        minute: u32,
    },
    /// Set the weather.
    SetWeather {
        /// GTAV weather name.
        weather: String,
    },
    /// Place the camera (on the ego car).
    SetCamera {
        /// World position `[x, y]`.
        position: [f64; 2],
        /// Heading in degrees.
        heading_deg: f64,
    },
    /// Create a vehicle.
    CreateVehicle {
        /// Model name.
        model: String,
        /// World position `[x, y]`.
        position: [f64; 2],
        /// Heading in degrees.
        heading_deg: f64,
        /// RGB color in bytes.
        color: [u8; 3],
    },
}

fn color_bytes(obj: &SceneObject) -> [u8; 3] {
    match obj.property("color") {
        Some(PropValue::List(rgb)) if rgb.len() == 3 => {
            let b = |i: usize| (rgb[i].as_number().unwrap_or(0.5) * 255.0) as u8;
            [b(0), b(1), b(2)]
        }
        _ => [128, 128, 128],
    }
}

fn model_name(obj: &SceneObject) -> String {
    match obj.property("model") {
        Some(PropValue::Map(m)) => m
            .get("name")
            .and_then(|n| n.as_str())
            .unwrap_or(&obj.class)
            .to_string(),
        Some(PropValue::Str(s)) => s.clone(),
        _ => obj.class.clone(),
    }
}

/// Emits the ordered command list a DeepGTAV-style plugin would execute
/// to realize the scene (§6.1's interface layer).
pub fn to_gta_commands(scene: &Scene) -> Vec<GtaCommand> {
    let mut commands = Vec::new();
    let time = scene
        .param("time")
        .and_then(PropValue::as_number)
        .unwrap_or(720.0)
        .rem_euclid(1440.0);
    commands.push(GtaCommand::SetTime {
        hour: (time / 60.0) as u32 % 24,
        minute: (time % 60.0) as u32,
    });
    commands.push(GtaCommand::SetWeather {
        weather: scene
            .param("weather")
            .and_then(|p| p.as_str().map(str::to_string))
            .unwrap_or_else(|| "CLEAR".to_string()),
    });
    let ego = scene.ego();
    commands.push(GtaCommand::SetCamera {
        position: ego.position,
        heading_deg: ego.heading.to_degrees(),
    });
    for obj in scene.non_ego_objects() {
        commands.push(GtaCommand::CreateVehicle {
            model: model_name(obj),
            position: obj.position,
            heading_deg: obj.heading.to_degrees(),
            color: color_bytes(obj),
        });
    }
    commands
}

/// Serializes the command list as JSON lines (one command per line).
pub fn to_gta_json_lines(scene: &Scene) -> String {
    to_gta_commands(scene)
        .iter()
        .map(|c| serde_json::to_string(c).expect("command serializes"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Emits a Webots `.wbt`-style world file: one proto node per object,
/// with translation, rotation, and size fields (the §3 robotics
/// interface).
pub fn to_webots_world(scene: &Scene) -> String {
    let mut out = String::from(
        "#VRML_SIM R2023 utf8\nWorldInfo {\n  basicTimeStep 16\n}\nViewpoint {\n  position 0 -12 8\n}\n",
    );
    for obj in &scene.objects {
        let proto = match obj.class.as_str() {
            "Rover" => "Robot",
            "Goal" => "Flag",
            "BigRock" | "Rock" => "Rock",
            "Pipe" => "Pipe",
            other => other,
        };
        out.push_str(&format!(
            "{proto} {{\n  translation {:.4} {:.4} 0\n  rotation 0 0 1 {:.4}\n  size {:.3} {:.3}\n  name \"{}_{}\"\n}}\n",
            obj.position[0],
            obj.position[1],
            obj.heading,
            obj.width,
            obj.height,
            obj.class.to_lowercase(),
            obj.id,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn scene() -> Scene {
        let mut params = BTreeMap::new();
        params.insert("time".into(), PropValue::Number(14.0 * 60.0 + 30.0));
        params.insert("weather".into(), PropValue::Str("RAIN".into()));
        let mut car_props = BTreeMap::new();
        car_props.insert(
            "model".into(),
            PropValue::Map(
                [
                    ("name".to_string(), PropValue::Str("DOMINATOR".into())),
                    ("width".to_string(), PropValue::Number(1.9)),
                ]
                .into_iter()
                .collect(),
            ),
        );
        car_props.insert(
            "color".into(),
            PropValue::List(vec![
                PropValue::Number(1.0),
                PropValue::Number(0.0),
                PropValue::Number(0.5),
            ]),
        );
        Scene {
            params,
            objects: vec![
                SceneObject {
                    id: 0,
                    class: "EgoCar".into(),
                    is_ego: true,
                    position: [10.0, 20.0],
                    heading: std::f64::consts::FRAC_PI_2,
                    width: 1.8,
                    height: 4.2,
                    properties: BTreeMap::new(),
                },
                SceneObject {
                    id: 1,
                    class: "Car".into(),
                    is_ego: false,
                    position: [12.0, 40.0],
                    heading: 0.1,
                    width: 1.9,
                    height: 4.9,
                    properties: car_props,
                },
            ],
        }
    }

    #[test]
    fn gta_commands_in_order() {
        let cmds = to_gta_commands(&scene());
        assert_eq!(cmds.len(), 4);
        assert_eq!(
            cmds[0],
            GtaCommand::SetTime {
                hour: 14,
                minute: 30
            }
        );
        assert_eq!(
            cmds[1],
            GtaCommand::SetWeather {
                weather: "RAIN".into()
            }
        );
        let GtaCommand::SetCamera {
            position,
            heading_deg,
        } = &cmds[2]
        else {
            panic!("expected camera command");
        };
        assert_eq!(*position, [10.0, 20.0]);
        assert!((heading_deg - 90.0).abs() < 1e-9);
        let GtaCommand::CreateVehicle { model, color, .. } = &cmds[3] else {
            panic!("expected vehicle command");
        };
        assert_eq!(model, "DOMINATOR");
        assert_eq!(*color, [255, 0, 127]);
    }

    #[test]
    fn gta_json_lines_round_trip() {
        let lines = to_gta_json_lines(&scene());
        assert_eq!(lines.lines().count(), 4);
        for line in lines.lines() {
            let cmd: GtaCommand = serde_json::from_str(line).unwrap();
            let back = serde_json::to_string(&cmd).unwrap();
            let again: GtaCommand = serde_json::from_str(&back).unwrap();
            assert_eq!(cmd, again);
        }
    }

    #[test]
    fn webots_world_has_one_node_per_object() {
        let mut s = scene();
        s.objects[0].class = "Rover".into();
        s.objects[1].class = "BigRock".into();
        let wbt = to_webots_world(&s);
        assert!(wbt.starts_with("#VRML_SIM"));
        assert!(wbt.contains("Robot {"));
        assert!(wbt.contains("Rock {"));
        assert!(wbt.contains("name \"rover_0\""));
        assert_eq!(wbt.matches("translation").count(), 2);
    }

    #[test]
    fn missing_params_default_sanely() {
        let mut s = scene();
        s.params.clear();
        let cmds = to_gta_commands(&s);
        assert_eq!(
            cmds[0],
            GtaCommand::SetTime {
                hour: 12,
                minute: 0
            }
        );
        assert_eq!(
            cmds[1],
            GtaCommand::SetWeather {
                weather: "CLEAR".into()
            }
        );
    }
}
