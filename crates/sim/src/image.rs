//! Rendered images: labeled ground truth plus photometric context.
//!
//! The experiments of §6 consume images only through (a) ground-truth
//! boxes and (b) the factors that make detection hard: distance, view
//! angle, occlusion, lighting, weather, model, and color. A
//! [`RenderedImage`] captures exactly that information for each scene —
//! it is the "image" the synthetic detector (scenic-detect) looks at.

use crate::camera::{Camera, PixelBox};
use scenic_core::{PropValue, Scene};
use serde::{Deserialize, Serialize};

/// One labeled car in an image.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RenderedCar {
    /// Ground-truth bounding box, pixels.
    pub bbox: PixelBox,
    /// Distance from the camera, meters.
    pub depth: f64,
    /// Heading relative to the line of sight, radians (0 = directly
    /// from behind).
    pub view_angle: f64,
    /// Fraction of the box covered by nearer cars, `[0, 1]`.
    pub occlusion: f64,
    /// Whether the box is clipped by the image border.
    pub truncated: bool,
    /// Car model name.
    pub model: String,
    /// RGB color in `[0, 1]`.
    pub color: [f64; 3],
}

/// A rendered scene: the ground truth of one synthetic image.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RenderedImage {
    /// Image width in pixels.
    pub width: f64,
    /// Image height in pixels.
    pub height: f64,
    /// Cars visible in the frame, nearest first.
    pub cars: Vec<RenderedCar>,
    /// Scene darkness in `[0, 1]` (0 at noon, 1 at midnight).
    pub darkness: f64,
    /// Weather adversity in `[0, 1]`.
    pub weather_severity: f64,
    /// Weather name.
    pub weather: String,
    /// Time of day, minutes since midnight.
    pub time: f64,
}

/// Weather adversity for perception, `[0, 1]` (0 = ideal). Matches the
/// 14 GTAV weather types of §6.1.
pub fn weather_severity(weather: &str) -> f64 {
    match weather {
        "EXTRASUNNY" | "CLEAR" => 0.0,
        "CLEARING" | "NEUTRAL" => 0.15,
        "CLOUDS" | "OVERCAST" => 0.25,
        "SMOG" => 0.4,
        "FOGGY" => 0.7,
        "RAIN" => 0.65,
        "THUNDER" => 0.8,
        "SNOW" | "SNOWLIGHT" => 0.6,
        "BLIZZARD" => 0.95,
        "XMAS" => 0.5,
        _ => 0.3,
    }
}

/// Darkness from time-of-day in minutes: 0 at noon, 1 at midnight.
pub fn darkness(time_minutes: f64) -> f64 {
    let t = time_minutes.rem_euclid(1440.0);
    (t - 720.0).abs() / 720.0
}

/// Renders a scene through the ego-mounted camera.
///
/// The ego itself is not rendered (it carries the camera). Cars are
/// listed nearest-first; occlusion is computed against all nearer boxes
/// by grid sampling.
pub fn render_scene(scene: &Scene) -> RenderedImage {
    let ego = scene.ego();
    let camera = Camera::from_ego(ego);
    render_scene_with_camera(scene, &camera)
}

/// Renders through an explicit camera.
pub fn render_scene_with_camera(scene: &Scene, camera: &Camera) -> RenderedImage {
    let time = scene
        .param("time")
        .and_then(PropValue::as_number)
        .unwrap_or(720.0);
    let weather = scene
        .param("weather")
        .and_then(|p| p.as_str().map(str::to_string))
        .unwrap_or_else(|| "CLEAR".to_string());

    let mut projected: Vec<(RenderedCar, PixelBox)> = Vec::new();
    for obj in scene.non_ego_objects() {
        let Some(p) = camera.project(obj) else {
            continue;
        };
        let model = obj
            .property("model")
            .and_then(|m| match m {
                PropValue::Map(map) => map.get("name").and_then(|n| n.as_str()).map(str::to_string),
                PropValue::Str(s) => Some(s.clone()),
                _ => None,
            })
            .unwrap_or_else(|| obj.class.clone());
        let color = obj
            .property("color")
            .and_then(|c| match c {
                PropValue::List(items) if items.len() == 3 => Some([
                    items[0].as_number().unwrap_or(0.5),
                    items[1].as_number().unwrap_or(0.5),
                    items[2].as_number().unwrap_or(0.5),
                ]),
                _ => None,
            })
            .unwrap_or([0.5, 0.5, 0.5]);
        projected.push((
            RenderedCar {
                bbox: p.bbox,
                depth: p.depth,
                view_angle: p.view_angle,
                occlusion: 0.0,
                truncated: p.truncated,
                model,
                color,
            },
            p.bbox,
        ));
    }
    projected.sort_by(|a, b| a.0.depth.partial_cmp(&b.0.depth).unwrap());

    // Occlusion: fraction of each box covered by strictly nearer boxes,
    // estimated on a 24×24 grid.
    let boxes: Vec<PixelBox> = projected.iter().map(|(_, b)| *b).collect();
    let mut cars = Vec::with_capacity(projected.len());
    for (i, (mut car, bbox)) in projected.into_iter().enumerate() {
        car.occlusion = occluded_fraction(&bbox, &boxes[..i]);
        cars.push(car);
    }

    RenderedImage {
        width: camera.image_width,
        height: camera.image_height,
        cars,
        darkness: darkness(time),
        weather_severity: weather_severity(&weather),
        weather,
        time,
    }
}

/// Fraction of `bbox` covered by the union of `covers` (grid-sampled).
pub fn occluded_fraction(bbox: &PixelBox, covers: &[PixelBox]) -> f64 {
    if covers.is_empty() || bbox.area() <= 0.0 {
        return 0.0;
    }
    const N: usize = 24;
    let mut hit = 0usize;
    for i in 0..N {
        for j in 0..N {
            let x = bbox.x_min + (i as f64 + 0.5) / N as f64 * bbox.width();
            let y = bbox.y_min + (j as f64 + 0.5) / N as f64 * bbox.height();
            if covers
                .iter()
                .any(|c| x >= c.x_min && x <= c.x_max && y >= c.y_min && y <= c.y_max)
            {
                hit += 1;
            }
        }
    }
    hit as f64 / (N * N) as f64
}

/// The pairwise IoU of the two nearest ground-truth boxes (the Fig. 36
/// statistic for two-car images); 0 when fewer than two cars are
/// visible.
pub fn pair_iou(image: &RenderedImage) -> f64 {
    if image.cars.len() < 2 {
        return 0.0;
    }
    image.cars[0].bbox.iou(&image.cars[1].bbox)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scenic_core::SceneObject;
    use std::collections::BTreeMap;

    fn scene_with_cars(cars: &[(f64, f64, f64)]) -> Scene {
        let mut objects = vec![SceneObject {
            id: 0,
            class: "EgoCar".into(),
            is_ego: true,
            position: [0.0, 0.0],
            heading: 0.0,
            width: 1.8,
            height: 4.2,
            properties: BTreeMap::new(),
        }];
        for (i, &(x, y, h)) in cars.iter().enumerate() {
            objects.push(SceneObject {
                id: i + 1,
                class: "Car".into(),
                is_ego: false,
                position: [x, y],
                heading: h,
                width: 1.9,
                height: 4.5,
                properties: BTreeMap::new(),
            });
        }
        let mut params = BTreeMap::new();
        params.insert("time".into(), PropValue::Number(720.0));
        params.insert("weather".into(), PropValue::Str("CLEAR".into()));
        Scene { params, objects }
    }

    #[test]
    fn renders_visible_cars_nearest_first() {
        let scene = scene_with_cars(&[(0.0, 30.0, 0.0), (2.0, 12.0, 0.0)]);
        let img = render_scene(&scene);
        assert_eq!(img.cars.len(), 2);
        assert!(img.cars[0].depth < img.cars[1].depth);
    }

    #[test]
    fn culls_cars_behind_camera() {
        let scene = scene_with_cars(&[(0.0, -10.0, 0.0), (0.0, 15.0, 0.0)]);
        let img = render_scene(&scene);
        assert_eq!(img.cars.len(), 1);
    }

    #[test]
    fn occlusion_detected_for_lined_up_cars() {
        // Directly behind one another: the far car is heavily occluded.
        let scene = scene_with_cars(&[(0.0, 10.0, 0.0), (0.3, 18.0, 0.0)]);
        let img = render_scene(&scene);
        assert_eq!(img.cars.len(), 2);
        assert_eq!(img.cars[0].occlusion, 0.0, "near car unoccluded");
        assert!(
            img.cars[1].occlusion > 0.5,
            "far car occlusion {}",
            img.cars[1].occlusion
        );
    }

    #[test]
    fn laterally_separated_cars_unoccluded() {
        let scene = scene_with_cars(&[(-6.0, 20.0, 0.0), (6.0, 20.0, 0.0)]);
        let img = render_scene(&scene);
        assert_eq!(img.cars.len(), 2);
        assert!(img.cars.iter().all(|c| c.occlusion < 0.05));
    }

    #[test]
    fn darkness_and_weather() {
        assert_eq!(darkness(720.0), 0.0);
        assert_eq!(darkness(0.0), 1.0);
        assert!((darkness(1080.0) - 0.5).abs() < 1e-9);
        assert!(weather_severity("RAIN") > weather_severity("EXTRASUNNY"));
        let scene = scene_with_cars(&[(0.0, 15.0, 0.0)]);
        let img = render_scene(&scene);
        assert_eq!(img.darkness, 0.0);
        assert_eq!(img.weather_severity, 0.0);
    }

    #[test]
    fn pair_iou_overlapping_vs_separated() {
        let overlapping = render_scene(&scene_with_cars(&[(0.0, 10.0, 0.0), (0.5, 16.0, 0.0)]));
        let separated = render_scene(&scene_with_cars(&[(-6.0, 20.0, 0.0), (6.0, 20.0, 0.0)]));
        assert!(pair_iou(&overlapping) > 0.1);
        assert_eq!(pair_iou(&separated), 0.0);
    }

    #[test]
    fn occluded_fraction_bounds() {
        let b = PixelBox::new(0.0, 0.0, 100.0, 100.0);
        assert_eq!(occluded_fraction(&b, &[]), 0.0);
        let full = PixelBox::new(-10.0, -10.0, 110.0, 110.0);
        assert_eq!(occluded_fraction(&b, &[full]), 1.0);
        let half = PixelBox::new(0.0, 0.0, 50.0, 100.0);
        let f = occluded_fraction(&b, &[half]);
        assert!((f - 0.5).abs() < 0.05, "{f}");
    }
}
