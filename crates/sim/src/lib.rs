//! # scenic-sim
//!
//! The simulator substrate of the Scenic reproduction: the interface
//! layer that turns sampled [`scenic_core::Scene`]s into labeled
//! synthetic "images" (§2's tool flow: Scenic → scenes → simulator →
//! data), plus the detection metrics of §6.1.
//!
//! The paper rendered scenes through GTAV; per the substitution rule we
//! render the *information* the experiments consume — pixel-space
//! ground-truth boxes with depth, view angle, occlusion, lighting,
//! weather, model, and color — through a pinhole [`camera`], and also
//! provide human-viewable [`render`]ings (PPM driver views, top-down
//! maps, ASCII previews).
//!
//! # Example
//!
//! ```
//! use scenic_core::sampler::Sampler;
//!
//! let scenario = scenic_core::compile(
//!     "ego = Object at 0 @ 0, with width 1.8, with height 4.2\n\
//!      Object at 0 @ (10, 30), with width 1.9, with height 4.5\n",
//! )?;
//! let scene = Sampler::new(&scenario).sample_seeded(5)?;
//! let image = scenic_sim::render_scene(&scene);
//! assert_eq!(image.cars.len(), 1);
//! # Ok::<(), scenic_core::ScenicError>(())
//! ```

pub mod camera;
pub mod export;
pub mod image;
pub mod metrics;
pub mod render;

pub use camera::{Camera, PixelBox, Projected};
pub use export::{to_gta_commands, to_gta_json_lines, to_webots_world, GtaCommand};
pub use image::{pair_iou, render_scene, render_scene_with_camera, RenderedCar, RenderedImage};
pub use metrics::{
    average_precision, evaluate_dataset, match_detections, mean_std, DatasetMetrics, Detection,
    MatchCounts, IOU_THRESHOLD,
};
pub use render::{ascii_view, driver_view, top_down, Raster};
