//! Detection metrics: precision, recall, and AP (§6.1, Appendix D).
//!
//! "Precision is defined as tp/(tp + fp) and recall as tp/(tp + fn),
//! where true positives tp is the number of correct detections, false
//! positives fp is the number of predicted boxes that do not match any
//! ground truth box, and false negatives fn is the number of ground
//! truth boxes that are not detected. … We adopt the common practice of
//! considering B_ŷ a detection for B_gt if IoU(B_gt, B_ŷ) > 0.5."
//! Average precision (AP) follows the all-points interpolation used by
//! the paper's reference tool \[4\].

use crate::camera::PixelBox;
use serde::{Deserialize, Serialize};

/// The IoU threshold for a predicted box to count as a detection.
pub const IOU_THRESHOLD: f64 = 0.5;

/// One predicted box with a confidence score.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// Predicted box.
    pub bbox: PixelBox,
    /// Confidence in `[0, 1]`.
    pub score: f64,
}

/// Match outcome on one image.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchCounts {
    /// Correct detections.
    pub tp: usize,
    /// Predictions matching no ground truth.
    pub fp: usize,
    /// Ground truths left undetected.
    pub fn_: usize,
}

impl MatchCounts {
    /// Precision `tp / (tp + fp)`; 1 when there are no predictions.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall `tp / (tp + fn)`; 1 when there is no ground truth.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// Accumulates another image's counts.
    pub fn add(&mut self, other: MatchCounts) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
    }
}

/// Greedily matches detections (score-descending) to ground-truth boxes
/// at IoU > 0.5, each ground truth matched at most once.
pub fn match_detections(detections: &[Detection], ground_truth: &[PixelBox]) -> MatchCounts {
    let mut order: Vec<usize> = (0..detections.len()).collect();
    order.sort_by(|&a, &b| {
        detections[b]
            .score
            .partial_cmp(&detections[a].score)
            .unwrap()
    });
    let mut matched = vec![false; ground_truth.len()];
    let mut tp = 0;
    let mut fp = 0;
    for di in order {
        let det = &detections[di];
        let best = ground_truth
            .iter()
            .enumerate()
            .filter(|(gi, _)| !matched[*gi])
            .map(|(gi, gt)| (gi, det.bbox.iou(gt)))
            .filter(|(_, iou)| *iou > IOU_THRESHOLD)
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        match best {
            Some((gi, _)) => {
                matched[gi] = true;
                tp += 1;
            }
            None => fp += 1,
        }
    }
    let fn_ = matched.iter().filter(|m| !**m).count();
    MatchCounts { tp, fp, fn_ }
}

/// Per-image precision/recall averaged over a test set — the metric of
/// §6.1 ("we use average precision and recall to evaluate the
/// performance of a model on a collection of images").
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DatasetMetrics {
    /// Mean per-image precision, percent.
    pub precision: f64,
    /// Mean per-image recall, percent.
    pub recall: f64,
    /// Images evaluated.
    pub images: usize,
}

/// Evaluates a set of `(detections, ground truth)` pairs.
pub fn evaluate_dataset(per_image: &[(Vec<Detection>, Vec<PixelBox>)]) -> DatasetMetrics {
    if per_image.is_empty() {
        return DatasetMetrics::default();
    }
    let mut precision = 0.0;
    let mut recall = 0.0;
    for (dets, gts) in per_image {
        let counts = match_detections(dets, gts);
        precision += counts.precision();
        recall += counts.recall();
    }
    let n = per_image.len() as f64;
    DatasetMetrics {
        precision: 100.0 * precision / n,
        recall: 100.0 * recall / n,
        images: per_image.len(),
    }
}

/// Average Precision over a whole dataset (Table 9's metric): rank all
/// detections by score, sweep the precision/recall curve, integrate
/// with all-points interpolation.
pub fn average_precision(per_image: &[(Vec<Detection>, Vec<PixelBox>)]) -> f64 {
    // (score, is_tp) for every detection, matched greedily per image.
    let mut records: Vec<(f64, bool)> = Vec::new();
    let mut total_gt = 0usize;
    for (dets, gts) in per_image {
        total_gt += gts.len();
        let mut order: Vec<usize> = (0..dets.len()).collect();
        order.sort_by(|&a, &b| dets[b].score.partial_cmp(&dets[a].score).unwrap());
        let mut matched = vec![false; gts.len()];
        for di in order {
            let det = &dets[di];
            let best = gts
                .iter()
                .enumerate()
                .filter(|(gi, _)| !matched[*gi])
                .map(|(gi, gt)| (gi, det.bbox.iou(gt)))
                .filter(|(_, iou)| *iou > IOU_THRESHOLD)
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            match best {
                Some((gi, _)) => {
                    matched[gi] = true;
                    records.push((det.score, true));
                }
                None => records.push((det.score, false)),
            }
        }
    }
    if total_gt == 0 {
        return 0.0;
    }
    records.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut curve: Vec<(f64, f64)> = Vec::with_capacity(records.len());
    for (_, is_tp) in &records {
        if *is_tp {
            tp += 1;
        } else {
            fp += 1;
        }
        let recall = tp as f64 / total_gt as f64;
        let precision = tp as f64 / (tp + fp) as f64;
        curve.push((recall, precision));
    }
    // All-points interpolation: make precision monotone from the right,
    // then integrate over recall.
    for i in (0..curve.len().saturating_sub(1)).rev() {
        curve[i].1 = curve[i].1.max(curve[i + 1].1);
    }
    let mut ap = 0.0;
    let mut prev_recall = 0.0;
    for (recall, precision) in curve {
        ap += (recall - prev_recall) * precision;
        prev_recall = recall;
    }
    100.0 * ap
}

/// Mean and sample standard deviation of a series (used for the
/// "± x.x" columns of Tables 6, 9, and 10).
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (f64::NAN, f64::NAN);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bx(x: f64, y: f64, w: f64, h: f64) -> PixelBox {
        PixelBox::new(x, y, x + w, y + h)
    }

    #[test]
    fn perfect_detection() {
        let gt = vec![bx(10.0, 10.0, 50.0, 40.0)];
        let dets = vec![Detection {
            bbox: bx(10.0, 10.0, 50.0, 40.0),
            score: 0.9,
        }];
        let m = match_detections(&dets, &gt);
        assert_eq!((m.tp, m.fp, m.fn_), (1, 0, 0));
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
    }

    #[test]
    fn shifted_box_below_threshold_is_fp_and_fn() {
        let gt = vec![bx(0.0, 0.0, 40.0, 40.0)];
        let dets = vec![Detection {
            bbox: bx(35.0, 35.0, 40.0, 40.0),
            score: 0.9,
        }];
        let m = match_detections(&dets, &gt);
        assert_eq!((m.tp, m.fp, m.fn_), (0, 1, 1));
    }

    #[test]
    fn each_gt_matched_once() {
        // Two detections on one ground truth: one TP, one FP.
        let gt = vec![bx(0.0, 0.0, 40.0, 40.0)];
        let dets = vec![
            Detection {
                bbox: bx(1.0, 1.0, 40.0, 40.0),
                score: 0.9,
            },
            Detection {
                bbox: bx(2.0, 2.0, 40.0, 40.0),
                score: 0.8,
            },
        ];
        let m = match_detections(&dets, &gt);
        assert_eq!((m.tp, m.fp, m.fn_), (1, 1, 0));
    }

    #[test]
    fn dataset_averaging() {
        let perfect = (
            vec![Detection {
                bbox: bx(0.0, 0.0, 40.0, 40.0),
                score: 1.0,
            }],
            vec![bx(0.0, 0.0, 40.0, 40.0)],
        );
        let miss = (Vec::new(), vec![bx(0.0, 0.0, 40.0, 40.0)]);
        let m = evaluate_dataset(&[perfect, miss]);
        assert_eq!(m.images, 2);
        // Precision: (1.0 + 1.0 [no predictions]) / 2 = 100%.
        assert!((m.precision - 100.0).abs() < 1e-9);
        // Recall: (1.0 + 0.0) / 2 = 50%.
        assert!((m.recall - 50.0).abs() < 1e-9);
    }

    #[test]
    fn ap_perfect_is_100() {
        let data = vec![(
            vec![Detection {
                bbox: bx(0.0, 0.0, 40.0, 40.0),
                score: 0.9,
            }],
            vec![bx(0.0, 0.0, 40.0, 40.0)],
        )];
        assert!((average_precision(&data) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn ap_penalizes_high_scoring_fps() {
        // A high-scoring FP before the TP halves early precision.
        let data = vec![(
            vec![
                Detection {
                    bbox: bx(500.0, 500.0, 40.0, 40.0),
                    score: 0.95,
                },
                Detection {
                    bbox: bx(0.0, 0.0, 40.0, 40.0),
                    score: 0.9,
                },
            ],
            vec![bx(0.0, 0.0, 40.0, 40.0)],
        )];
        let ap = average_precision(&data);
        assert!((ap - 50.0).abs() < 1e-9, "ap {ap}");
    }

    #[test]
    fn ap_empty_gt_is_zero() {
        assert_eq!(average_precision(&[(Vec::new(), Vec::new())]), 0.0);
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-9);
        assert!((s - 2.138089935299395).abs() < 1e-9);
        let (m1, s1) = mean_std(&[3.0]);
        assert_eq!((m1, s1), (3.0, 0.0));
    }
}
