//! Raster rendering: PPM images and ASCII previews.
//!
//! The paper's figures show driver-view screenshots and top-down
//! workspaces. We render both from scenes: a stylized driver view
//! (sky/ground with depth-shaded car boxes, lighting and weather tint)
//! and a top-down map view. These are for human inspection — the
//! detector consumes [`crate::image::RenderedImage`] directly.

use crate::image::RenderedImage;
use scenic_core::Scene;
use scenic_geom::{Aabb, Polygon, Vec2};
use std::io::Write;
use std::path::Path;

/// A simple RGB raster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Raster {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    data: Vec<u8>,
}

impl Raster {
    /// A raster filled with one color.
    pub fn filled(width: usize, height: usize, color: [u8; 3]) -> Raster {
        let mut data = Vec::with_capacity(width * height * 3);
        for _ in 0..width * height {
            data.extend_from_slice(&color);
        }
        Raster {
            width,
            height,
            data,
        }
    }

    /// Sets one pixel (ignores out-of-range coordinates).
    pub fn set(&mut self, x: i64, y: i64, color: [u8; 3]) {
        if x < 0 || y < 0 || x as usize >= self.width || y as usize >= self.height {
            return;
        }
        let idx = (y as usize * self.width + x as usize) * 3;
        self.data[idx..idx + 3].copy_from_slice(&color);
    }

    /// Reads one pixel.
    pub fn get(&self, x: usize, y: usize) -> [u8; 3] {
        let idx = (y * self.width + x) * 3;
        [self.data[idx], self.data[idx + 1], self.data[idx + 2]]
    }

    /// Fills an axis-aligned rectangle.
    pub fn fill_rect(&mut self, x0: f64, y0: f64, x1: f64, y1: f64, color: [u8; 3]) {
        for y in y0.max(0.0) as i64..=(y1.min(self.height as f64 - 1.0)) as i64 {
            for x in x0.max(0.0) as i64..=(x1.min(self.width as f64 - 1.0)) as i64 {
                self.set(x, y, color);
            }
        }
    }

    /// Fills a convex-ish polygon by scanline containment.
    pub fn fill_polygon(
        &mut self,
        poly: &Polygon,
        color: [u8; 3],
        to_px: impl Fn(Vec2) -> (f64, f64),
    ) {
        // Rasterize via the polygon's pixel-space bounding box.
        let pts: Vec<(f64, f64)> = poly.vertices().iter().map(|&v| to_px(v)).collect();
        let (min_x, max_x) = pts
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| {
                (lo.min(p.0), hi.max(p.0))
            });
        let (min_y, max_y) = pts
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| {
                (lo.min(p.1), hi.max(p.1))
            });
        let px_poly = Polygon::new(pts.iter().map(|&(x, y)| Vec2::new(x, y)).collect());
        for y in min_y.max(0.0) as i64..=(max_y.min(self.height as f64 - 1.0)) as i64 {
            for x in min_x.max(0.0) as i64..=(max_x.min(self.width as f64 - 1.0)) as i64 {
                if px_poly.contains(Vec2::new(x as f64 + 0.5, y as f64 + 0.5)) {
                    self.set(x, y, color);
                }
            }
        }
    }

    /// Writes a binary PPM (P6) file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from file creation or writing.
    pub fn save_ppm(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        write!(f, "P6\n{} {}\n255\n", self.width, self.height)?;
        f.write_all(&self.data)?;
        Ok(())
    }
}

fn shade(color: [f64; 3], brightness: f64) -> [u8; 3] {
    [
        (color[0] * brightness * 255.0).clamp(0.0, 255.0) as u8,
        (color[1] * brightness * 255.0).clamp(0.0, 255.0) as u8,
        (color[2] * brightness * 255.0).clamp(0.0, 255.0) as u8,
    ]
}

/// Renders the stylized driver view of a rendered image.
pub fn driver_view(image: &RenderedImage, width: usize, height: usize) -> Raster {
    let brightness = (1.0 - 0.8 * image.darkness) * (1.0 - 0.4 * image.weather_severity);
    let sky = shade([0.45, 0.65, 0.95], brightness);
    let ground = shade([0.35, 0.35, 0.37], brightness);
    let mut raster = Raster::filled(width, height, sky);
    let horizon = (height as f64 * 0.45) as i64;
    for y in horizon..height as i64 {
        for x in 0..width as i64 {
            raster.set(x, y, ground);
        }
    }
    let sx = width as f64 / image.width;
    let sy = height as f64 / image.height;
    // Paint far-to-near so nearer cars overdraw (correct occlusion).
    for car in image.cars.iter().rev() {
        let fade = (1.0 - car.depth / 150.0).clamp(0.3, 1.0);
        let color = shade(car.color, brightness * fade);
        raster.fill_rect(
            car.bbox.x_min * sx,
            car.bbox.y_min * sy,
            car.bbox.x_max * sx,
            car.bbox.y_max * sy,
            color,
        );
    }
    raster
}

/// Renders a top-down view of a scene over optional background polygons
/// (e.g. the road map), covering `bounds`.
pub fn top_down(
    scene: &Scene,
    background: &[Polygon],
    bounds: Aabb,
    width: usize,
    height: usize,
) -> Raster {
    let mut raster = Raster::filled(width, height, [230, 230, 225]);
    let to_px = |v: Vec2| {
        (
            (v.x - bounds.min.x) / bounds.width() * width as f64,
            // Flip y: North is up.
            (bounds.max.y - v.y) / bounds.height() * height as f64,
        )
    };
    for poly in background {
        raster.fill_polygon(poly, [160, 160, 160], to_px);
    }
    for obj in &scene.objects {
        let color = if obj.is_ego {
            [220, 40, 40]
        } else {
            [30, 60, 200]
        };
        raster.fill_polygon(&obj.bounding_box().to_polygon(), color, to_px);
    }
    raster
}

/// An ASCII preview of the driver view (for terminal examples): `#`
/// marks car pixels, `-` the horizon.
pub fn ascii_view(image: &RenderedImage, cols: usize, rows: usize) -> String {
    let mut grid = vec![vec![' '; cols]; rows];
    let horizon_row = (rows as f64 * 0.45) as usize;
    if horizon_row < rows {
        for cell in &mut grid[horizon_row] {
            *cell = '-';
        }
    }
    for car in image.cars.iter().rev() {
        let x0 = (car.bbox.x_min / image.width * cols as f64) as usize;
        let x1 = (car.bbox.x_max / image.width * cols as f64) as usize;
        let y0 = (car.bbox.y_min / image.height * rows as f64) as usize;
        let y1 = (car.bbox.y_max / image.height * rows as f64) as usize;
        let glyph = if car.depth < 15.0 { '#' } else { '+' };
        for row in grid
            .iter_mut()
            .take(y1.min(rows - 1) + 1)
            .skip(y0.min(rows - 1))
        {
            for cell in row
                .iter_mut()
                .take(x1.min(cols - 1) + 1)
                .skip(x0.min(cols - 1))
            {
                *cell = glyph;
            }
        }
    }
    grid.into_iter()
        .map(|row| row.into_iter().collect::<String>() + "\n")
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::camera::PixelBox;
    use crate::image::RenderedCar;

    fn demo_image() -> RenderedImage {
        RenderedImage {
            width: 1920.0,
            height: 1200.0,
            cars: vec![RenderedCar {
                bbox: PixelBox::new(800.0, 500.0, 1100.0, 700.0),
                depth: 12.0,
                view_angle: 0.0,
                occlusion: 0.0,
                truncated: false,
                model: "BLISTA".into(),
                color: [0.9, 0.1, 0.1],
            }],
            darkness: 0.0,
            weather_severity: 0.0,
            weather: "CLEAR".into(),
            time: 720.0,
        }
    }

    #[test]
    fn driver_view_paints_car() {
        let raster = driver_view(&demo_image(), 192, 120);
        // Center of the car's box should be reddish.
        let px = raster.get(95, 60);
        assert!(px[0] > 150 && px[1] < 100, "pixel {px:?}");
        // Sky stays blue.
        let sky = raster.get(10, 5);
        assert!(sky[2] > sky[0], "sky {sky:?}");
    }

    #[test]
    fn night_is_darker() {
        let mut img = demo_image();
        let day = driver_view(&img, 64, 40);
        img.darkness = 1.0;
        let night = driver_view(&img, 64, 40);
        let d = day.get(5, 5);
        let n = night.get(5, 5);
        assert!(n[2] < d[2], "night sky {n:?} vs day {d:?}");
    }

    #[test]
    fn ascii_view_contains_car() {
        let art = ascii_view(&demo_image(), 80, 24);
        assert!(art.contains('#'), "{art}");
        assert!(art.contains('-'));
        assert_eq!(art.lines().count(), 24);
    }

    #[test]
    fn ppm_roundtrip_header() {
        let raster = Raster::filled(8, 4, [1, 2, 3]);
        let dir = std::env::temp_dir().join("scenic_render_test.ppm");
        raster.save_ppm(&dir).unwrap();
        let bytes = std::fs::read(&dir).unwrap();
        assert!(bytes.starts_with(b"P6\n8 4\n255\n"));
        assert_eq!(bytes.len(), 11 + 8 * 4 * 3);
        let _ = std::fs::remove_file(dir);
    }

    #[test]
    fn top_down_draws_ego_red() {
        use scenic_core::{PropValue, SceneObject};
        use std::collections::BTreeMap;
        let scene = Scene {
            params: BTreeMap::<String, PropValue>::new(),
            objects: vec![SceneObject {
                id: 0,
                class: "Car".into(),
                is_ego: true,
                position: [50.0, 50.0],
                heading: 0.0,
                width: 10.0,
                height: 20.0,
                properties: BTreeMap::new(),
            }],
        };
        let bounds = Aabb::new(Vec2::ZERO, Vec2::new(100.0, 100.0));
        let raster = top_down(&scene, &[], bounds, 100, 100);
        let px = raster.get(50, 50);
        assert!(px[0] > 150 && px[2] < 100, "{px:?}");
    }
}
