//! Property-based tests for the detection metrics (§6.1, Appendix D).
//!
//! The experiment harness's shape checks compare precision/recall/AP
//! values across datasets, so the metrics themselves must honor their
//! algebraic contract on *arbitrary* predictions, not just the
//! hand-picked cases in the unit tests: values stay in [0, 100],
//! perfect predictions score perfectly, empty predictions recall
//! nothing, and the greedy matcher never matches one ground-truth box
//! twice.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scenic_sim::{average_precision, evaluate_dataset, match_detections, Detection, PixelBox};

/// A random pixel box with positive area.
fn random_box(rng: &mut StdRng) -> PixelBox {
    let x = rng.gen_range(0.0..900.0);
    let y = rng.gen_range(0.0..500.0);
    let w = rng.gen_range(1.0..120.0);
    let h = rng.gen_range(1.0..120.0);
    PixelBox::new(x, y, x + w, y + h)
}

/// A random image: up to 8 detections against up to 8 ground truths.
fn random_image(rng: &mut StdRng) -> (Vec<Detection>, Vec<PixelBox>) {
    let n_det = rng.gen_range(0..9usize);
    let n_gt = rng.gen_range(0..9usize);
    let dets = (0..n_det)
        .map(|_| Detection {
            bbox: random_box(rng),
            score: rng.gen_range(0.0..1.0),
        })
        .collect();
    let gts = (0..n_gt).map(|_| random_box(rng)).collect();
    (dets, gts)
}

proptest! {
    #[test]
    fn precision_recall_and_ap_stay_in_range(seed in 0u64..400) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_images = rng.gen_range(1..6usize);
        let per_image: Vec<_> = (0..n_images).map(|_| random_image(&mut rng)).collect();

        for (dets, gts) in &per_image {
            let counts = match_detections(dets, gts);
            prop_assert!((0.0..=1.0).contains(&counts.precision()));
            prop_assert!((0.0..=1.0).contains(&counts.recall()));
        }
        let metrics = evaluate_dataset(&per_image);
        prop_assert!((0.0..=100.0).contains(&metrics.precision), "precision {}", metrics.precision);
        prop_assert!((0.0..=100.0).contains(&metrics.recall), "recall {}", metrics.recall);
        let ap = average_precision(&per_image);
        prop_assert!((0.0..=100.0).contains(&ap), "ap {ap}");
    }

    #[test]
    fn perfect_predictions_score_perfectly(seed in 0u64..400) {
        // Predicting exactly the ground-truth boxes must give 100/100
        // (every detection has an identical box available at IoU = 1).
        let mut rng = StdRng::seed_from_u64(seed);
        let n_gt = rng.gen_range(1..9usize);
        let gts: Vec<PixelBox> = (0..n_gt).map(|_| random_box(&mut rng)).collect();
        let dets: Vec<Detection> = gts
            .iter()
            .map(|b| Detection { bbox: *b, score: rng.gen_range(0.1..1.0) })
            .collect();

        let counts = match_detections(&dets, &gts);
        prop_assert_eq!((counts.tp, counts.fp, counts.fn_), (n_gt, 0, 0));
        let metrics = evaluate_dataset(&[(dets.clone(), gts.clone())]);
        prop_assert!((metrics.precision - 100.0).abs() < 1e-9);
        prop_assert!((metrics.recall - 100.0).abs() < 1e-9);
        let ap = average_precision(&[(dets, gts)]);
        prop_assert!((ap - 100.0).abs() < 1e-9, "ap {ap}");
    }

    #[test]
    fn empty_predictions_recall_nothing(seed in 0u64..400) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_gt = rng.gen_range(1..9usize);
        let gts: Vec<PixelBox> = (0..n_gt).map(|_| random_box(&mut rng)).collect();

        let counts = match_detections(&[], &gts);
        prop_assert_eq!((counts.tp, counts.fp, counts.fn_), (0, 0, n_gt));
        prop_assert_eq!(counts.recall(), 0.0);
        // No predictions means no false positives, so precision keeps
        // its vacuous-truth convention.
        prop_assert_eq!(counts.precision(), 1.0);
        prop_assert_eq!(average_precision(&[(Vec::new(), gts)]), 0.0);
    }

    #[test]
    fn no_ground_truth_box_is_matched_twice(seed in 0u64..400) {
        // Conservation: every detection is TP or FP, every ground truth
        // is matched (by exactly one detection) or FN. If the matcher
        // ever credited one ground-truth box to two detections, tp
        // would exceed the ground-truth count or break these sums.
        let mut rng = StdRng::seed_from_u64(seed);
        let (dets, gts) = random_image(&mut rng);
        let counts = match_detections(&dets, &gts);
        prop_assert_eq!(counts.tp + counts.fp, dets.len());
        prop_assert_eq!(counts.tp + counts.fn_, gts.len());
        prop_assert!(counts.tp <= gts.len());
        prop_assert!(counts.tp <= dets.len());
    }
}
