//! Manifest smoke test: render a scene to an image, rasterize it, and
//! export the simulator command formats.

use scenic_core::sampler::Sampler;

fn scene() -> scenic_core::Scene {
    let scenario = scenic_core::compile(
        "ego = Object at 0 @ 0, with width 2, with height 5\n\
         Object at 3 @ 12, with width 2, with height 5\n",
    )
    .unwrap();
    Sampler::new(&scenario).sample_seeded(3).unwrap()
}

#[test]
fn image_export() {
    let scene = scene();
    let image = scenic_sim::render_scene(&scene);

    // PPM raster export round-trips through the filesystem.
    let raster = scenic_sim::render::driver_view(&image, 64, 48);
    let dir = std::env::temp_dir().join("scenic-sim-smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("smoke.ppm");
    raster.save_ppm(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    assert!(bytes.starts_with(b"P6"), "not a binary PPM");

    // Simulator command stream mentions the camera placement.
    let jsonl = scenic_sim::to_gta_json_lines(&scene);
    assert!(jsonl.contains("set_camera"), "{jsonl}");
}
