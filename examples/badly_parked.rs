//! The badly-parked-car scenario (paper §3, Fig. 3, Appendix A.4).
//!
//! Demonstrates specifiers composing: `on visible curb` picks an
//! oriented spot on the curb, `left of spot by 0.5` offsets away from
//! it, and `facing badAngle relative to roadDirection` misaligns the
//! car 10–20°. Writes top-down PPM renderings next to the target dir.
//!
//! Run with `cargo run --example badly_parked`.

use scenic::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = scenic::gta::World::generate(scenic::gta::MapConfig::default());
    let scenario = compile_with_world(scenic::gta::scenarios::BADLY_PARKED, world.core())?;
    let mut sampler = Sampler::new(&scenario).with_seed(3);

    let out_dir = std::path::Path::new("target/examples");
    std::fs::create_dir_all(out_dir)?;

    for i in 0..3 {
        let scene = sampler.sample()?;
        let parked = scene.non_ego_objects().next().expect("parked car");
        // How badly parked? Compare against the local road direction.
        let road_heading = world
            .map
            .road_direction()
            .at(parked.position_vec())
            .radians();
        let off = (parked.heading - road_heading).to_degrees().abs();
        println!(
            "scene {i}: car parked at ({:.1}, {:.1}), {:.1}° off the curb direction",
            parked.position[0], parked.position[1], off
        );

        let bounds = scenic::geom::Aabb::new(
            scene.ego().position_vec() - Vec2::new(25.0, 25.0),
            scene.ego().position_vec() + Vec2::new(25.0, 25.0),
        );
        let raster = scenic::sim::top_down(&scene, &world.map.road_polygons(), bounds, 400, 400);
        let path = out_dir.join(format!("badly_parked_{i}.ppm"));
        raster.save_ppm(&path)?;
        println!("  wrote {}", path.display());
    }
    Ok(())
}
