//! Bumper-to-bumper traffic (paper Fig. 1, Appendix A.11): three lanes
//! of four cars each, built from the ~20-line scenario via the platoon
//! helper functions of Figs. 18 and 20.
//!
//! Run with `cargo run --example bumper_to_bumper`.

use scenic::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = scenic::gta::World::generate(scenic::gta::MapConfig::default());
    let scenario = compile_with_world(scenic::gta::scenarios::BUMPER_TO_BUMPER, world.core())?;
    let mut sampler = Sampler::new(&scenario).with_seed(1);

    let out_dir = std::path::Path::new("target/examples");
    std::fs::create_dir_all(out_dir)?;

    for i in 0..3 {
        let scene = sampler.sample()?;
        println!("=== scene {i}: {} cars ===", scene.objects.len());
        let image = scenic::sim::render_scene(&scene);
        println!(
            "  {} cars in frame; nearest at {:.1}m, farthest at {:.1}m",
            image.cars.len(),
            image.cars.first().map(|c| c.depth).unwrap_or(0.0),
            image.cars.last().map(|c| c.depth).unwrap_or(0.0),
        );
        print!("{}", scenic::sim::ascii_view(&image, 72, 20));

        // Driver-view rendering (the Fig. 1 style).
        let raster = scenic::sim::driver_view(&image, 480, 300);
        let path = out_dir.join(format!("bumper_{i}.ppm"));
        raster.save_ppm(&path)?;
        println!("  wrote {}", path.display());
    }

    let stats = sampler.stats();
    println!(
        "rejection sampling: {:.1} runs/scene (collisions: {}, visibility: {})",
        stats.iterations_per_scene(),
        stats.collision_rejections,
        stats.visibility_rejections
    );
    Ok(())
}
