//! Debugging a detector failure (paper §6.4 in miniature): find a
//! misclassified image, generalize it with mutation noise, and compare
//! variant scenarios to locate the root cause.
//!
//! Run with `cargo run --release --example debug_failure`
//! (release mode recommended: it trains on 800 generated images).

use scenic::detect::{Dataset, Detector};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = scenic::gta::World::generate(scenic::gta::MapConfig::default());

    // Train M_generic on the generic one/two-car scenarios (§6.2).
    println!("training M_generic on 800 generic images…");
    let mut train = Dataset::default();
    for (k, n) in [(1usize, 400usize), (2, 400)] {
        let src = scenic::gta::scenarios::generic_n_cars(k);
        train = train.concat(&Dataset::from_source(
            &src,
            world.core(),
            n,
            10 + k as u64,
            4,
        )?);
    }
    let model = Detector::train(&train.images);

    // Hunt for a close-car image the model misclassifies (extra boxes).
    println!("searching for a misclassified image…");
    let probe = Dataset::from_source(
        &scenic::gta::scenarios::generic_n_cars(1),
        world.core(),
        300,
        99,
        4,
    )?;
    let runs = model.run_on(&probe.images, 5);
    let mut seed_case = None;
    for (i, (dets, gts)) in runs.iter().enumerate() {
        let counts = scenic::sim::match_detections(dets, gts);
        if counts.fp >= 2 && counts.fn_ == 0 && !probe.images[i].cars.is_empty() {
            seed_case = Some(i);
            break;
        }
    }
    let Some(idx) = seed_case else {
        println!("no split-style failure found in 300 probes (model already strong)");
        return Ok(());
    };
    let bad = &probe.images[idx];
    let car = &bad.cars[0];
    println!(
        "found: car at {:.1}m, view angle {:.0}°, model {}, detected as multiple boxes",
        car.depth,
        car.view_angle.to_degrees(),
        car.model
    );

    // Explore the neighborhood: variants of the failure (Table 7 style).
    let close = scenic::gta::scenarios::one_car_close();
    let shallow = scenic::gta::scenarios::one_car_close_shallow();
    let generic1 = scenic::gta::scenarios::generic_n_cars(1);
    for (name, src) in [
        ("any position and angle", generic1.as_str()),
        ("close to the camera", close.as_str()),
        ("close + shallow angle", shallow.as_str()),
    ] {
        let variant = Dataset::from_source(src, world.core(), 150, 7, 4)?;
        let m = model.evaluate(&variant.images, 3);
        println!(
            "  variant {name:<24} precision {:5.1}%  recall {:5.1}%",
            m.precision, m.recall
        );
    }
    println!("→ closeness to the camera drives the failure (cf. Table 7/8)");
    Ok(())
}
