//! The simulator *interface layer* (paper §1): "writing an interface
//! layer converting the configurations output by Scenic into the
//! simulator's input format."
//!
//! This example samples one scene from the two-overlapping-cars scenario
//! (Fig. 8) and exports it three ways:
//!
//! 1. the scene's own JSON (the neutral interchange format),
//! 2. a DeepGTAV-style command stream (what the paper's GTAV plugin
//!    consumed),
//! 3. a Webots `.wbt`-style world fragment (the paper's second
//!    simulator, §3 / Fig. 4).
//!
//! Run with `cargo run --example export_scene`.

use scenic::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = scenic::gta::World::generate(scenic::gta::MapConfig::default());
    let scenario = compile_with_world(scenic::gta::scenarios::TWO_OVERLAPPING, world.core())?;
    let scene = Sampler::new(&scenario).with_seed(4).sample()?;

    let out_dir = std::path::Path::new("target/examples");
    std::fs::create_dir_all(out_dir)?;

    // 1. Neutral JSON — every property of every object plus the global
    //    parameters (time, weather).
    let json = scene.to_json();
    std::fs::write(out_dir.join("scene.json"), &json)?;
    println!("scene.json          {:>6} bytes", json.len());

    // Round-trip sanity: the interchange format is lossless.
    let back = Scene::from_json(&json).map_err(std::io::Error::other)?;
    assert_eq!(back.objects.len(), scene.objects.len());

    // 2. GTAV plugin commands (camera, weather, time, one CreateCar per
    //    vehicle), newline-delimited JSON like DeepGTAV's protocol.
    let commands = scenic::sim::to_gta_json_lines(&scene);
    std::fs::write(out_dir.join("scene.gta.jsonl"), &commands)?;
    println!("scene.gta.jsonl     {:>6} bytes", commands.len());
    for line in commands.lines().take(3) {
        println!("    {line}");
    }

    // 3. Webots world fragment.
    let wbt = scenic::sim::to_webots_world(&scene);
    std::fs::write(out_dir.join("scene.wbt"), &wbt)?;
    println!("scene.wbt           {:>6} bytes", wbt.len());

    println!(
        "\nexported a scene with {} objects to target/examples/",
        scene.objects.len()
    );
    Ok(())
}
