//! Robot motion planning with a bottleneck (paper §3, Fig. 4/22/23):
//! rubble-field workspaces where the direct route to the goal forces
//! the planner to consider climbing over a rock.
//!
//! Run with `cargo run --example mars_rover`.

use scenic::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = scenic::mars::world();
    let scenario = compile_with_world(scenic::mars::BOTTLENECK, &world)?;
    let mut sampler = Sampler::new(&scenario).with_seed(8);

    let out_dir = std::path::Path::new("target/examples");
    std::fs::create_dir_all(out_dir)?;

    let mut challenging = 0;
    let n = 5;
    for i in 0..n {
        let scene = sampler.sample()?;
        let climb = scenic::mars::plan(&scene, scenic::mars::WORKSPACE_HALF, true);
        let around = scenic::mars::plan(&scene, scenic::mars::WORKSPACE_HALF, false);
        let forced = scenic::mars::requires_climbing(&scene, scenic::mars::WORKSPACE_HALF, 1.15);
        if forced {
            challenging += 1;
        }
        println!(
            "workspace {i}: climbing route {:?}m, rock-free route {:?}m → {}",
            climb.as_ref().map(|p| (p.length * 10.0).round() / 10.0),
            around.as_ref().map(|p| (p.length * 10.0).round() / 10.0),
            if forced {
                "must climb (or detour hard)"
            } else {
                "easy"
            }
        );

        let bounds = scenic::geom::Aabb::new(Vec2::new(-4.0, -4.0), Vec2::new(4.0, 4.0));
        let raster = scenic::sim::top_down(&scene, &[], bounds, 400, 400);
        let path = out_dir.join(format!("mars_{i}.ppm"));
        raster.save_ppm(&path)?;
    }
    println!("{challenging}/{n} generated workspaces force the planner to consider climbing");
    Ok(())
}
