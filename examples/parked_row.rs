//! Parked cars placed by a *user-defined specifier* — the language
//! extension the paper names in §8 ("allowing user-defined specifiers").
//!
//! The scenario defines
//!
//! ```text
//! specifier parkedBeside(gap=0.5) specifies position optionally heading requires width:
//!     spot = OrientedPoint on visible curb
//!     p = spot offset by (-(self.width / 2 + gap)) @ 0
//!     return {'position': p.position, 'heading': p.heading}
//! ```
//!
//! and applies it with `Car using parkedBeside(0.25)`. Because the
//! specifier declares `requires width`, Algorithm 1 evaluates `with
//! width 2.6` (or the model's default width) *first*, so the gap is
//! measured from the car's edge — §3's motivating "0.5 m left of the
//! curb" dependency chain, now expressible by users.
//!
//! Run with `cargo run --example parked_row`.

use scenic::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = scenic::gta::World::generate(scenic::gta::MapConfig::default());
    let scenario = compile_with_world(scenic::gta::scenarios::PARKED_ROW, world.core())?;
    let mut sampler = Sampler::new(&scenario).with_seed(12);

    let out_dir = std::path::Path::new("target/examples");
    std::fs::create_dir_all(out_dir)?;

    for i in 0..3 {
        let scene = sampler.sample()?;
        println!("scene {i}:");
        for car in scene.non_ego_objects() {
            println!(
                "  {} (width {:.2} m) parked at ({:.1}, {:.1}), heading {:.1}°",
                car.class,
                car.width,
                car.position[0],
                car.position[1],
                car.heading.to_degrees()
            );
        }

        let bounds = scenic::geom::Aabb::new(
            scene.ego().position_vec() - Vec2::new(25.0, 25.0),
            scene.ego().position_vec() + Vec2::new(25.0, 25.0),
        );
        let raster = scenic::sim::top_down(&scene, &world.map.road_polygons(), bounds, 400, 400);
        let path = out_dir.join(format!("parked_row_{i}.ppm"));
        raster.save_ppm(&path)?;
        println!("  wrote {}", path.display());
    }
    Ok(())
}
