//! Quickstart: compile a Scenic scenario, sample scenes, inspect them.
//!
//! Mirrors §3's opening example — two cars on the road, one being the
//! ego — and shows the scene both as JSON (the simulator interface
//! format) and as an ASCII driver view.
//!
//! Run with `cargo run --example quickstart`.

use scenic::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The world substitutes for the GTAV map: a procedurally generated
    // city exposing `road`, `curb`, and `roadDirection` (see DESIGN.md).
    let world = scenic::gta::World::generate(scenic::gta::MapConfig::default());

    // The simplest possible scenario (paper §3 / A.2).
    let source = "\
ego = Car
Car
";
    let scenario = compile_with_world(source, world.core())?;
    let mut sampler = Sampler::new(&scenario).with_seed(2019);

    for i in 0..3 {
        let scene = sampler.sample()?;
        println!("=== scene {i} ===");
        for obj in &scene.objects {
            let tag = if obj.is_ego { " (ego)" } else { "" };
            println!(
                "  {}{} at ({:.1}, {:.1}) heading {:.1}°",
                obj.class,
                tag,
                obj.position[0],
                obj.position[1],
                obj.heading.to_degrees()
            );
        }
        let image = scenic::sim::render_scene(&scene);
        println!(
            "  rendered: {} car(s) in frame, weather {}, {:02.0}:{:02.0}",
            image.cars.len(),
            image.weather,
            (image.time / 60.0).floor(),
            image.time % 60.0,
        );
        print!("{}", scenic::sim::ascii_view(&image, 72, 18));
    }

    let stats = sampler.stats();
    println!(
        "sampling: {} scenes in {} interpreter runs ({:.1} runs/scene)",
        stats.scenes,
        stats.iterations,
        stats.iterations_per_scene()
    );
    Ok(())
}
