ego = EgoCar
crossing = Car on visible road, facing (75, 105) deg relative to roadDirection
require (distance to crossing) > 8
require (distance to crossing) < 25
require abs(apparent heading of crossing) > 30 deg
