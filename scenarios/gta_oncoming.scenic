ego = Car
car2 = Car offset by (-10, 10) @ (20, 40), with viewAngle 30 deg
require car2 can see ego
