param mission = 'formation-survey'

ego = Rover at (-0.5, 0.5) @ -2.5, facing (-5, 5) deg
gap = (1.1, 1.6)

def wing(side):
    return Rover at (front of ego) offset by (side * resample(gap)) @ (0.2, 0.6)

leftWing = wing(-1)
rightWing = wing(1)
require (distance from leftWing to rightWing) > 2
require[0.8] (distance to leftWing) < 2.5

Goal at (-1, 1) @ (2.5, 3)
Rock at (-3, -1) @ (0.5, 2)
Rock at (1, 3) @ (0.5, 2)
Pipe at (-2, 2) @ (-1, -0.2), facing (0, 360) deg
