ego = Car
Car
