wiggle = (-10 deg, 10 deg)
ego = EgoCar with roadDeviation wiggle
Car visible, with roadDeviation resample(wiggle)
Car visible, with roadDeviation resample(wiggle)
