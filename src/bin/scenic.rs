//! `scenic` — the command-line front end.
//!
//! Mirrors how the paper's tool flow (§2, Fig. 2) is driven in practice:
//! `.scenic` files go in, sampled scenes come out in a simulator's
//! input format.
//!
//! ```text
//! scenic check  <file>... [--world gta|mars|bare]
//! scenic lint   <file>... [--world W] [--deny warnings] [--format text|json]
//! scenic print  <file>...
//! scenic sample <file>... [--world W] [-n N] [--seed S] [--jobs J]
//!               [--repeat R] [--format json|gta|wbt|summary]
//!               [--out DIR] [--stats]
//! scenic bench-pool <file>... [--world W] [--jobs J] [--seed S]
//! scenic exp    <name>... [--scale S] [--seed N] [--jobs J]
//!               [--json PATH] [--md PATH]
//! scenic serve  [--host H] [--port P]
//! scenic client <action> [<file>...] [--addr HOST:PORT] [sample options]
//! ```
//!
//! `check` parses, compiles, and runs the static analyzer (reporting
//! every diagnostic with rustc-style carets; analysis errors fail the
//! check), `lint` runs the same pass with lint-style exit codes (2 on
//! errors, 1 when `--deny warnings` and any warning fired, 0 otherwise)
//! and machine-readable `--format json`,
//! `print` re-emits the canonical pretty-printed source, and
//! `sample` draws `N` scenes by deterministic parallel rejection
//! sampling (`--jobs` workers on the persistent process pool; every
//! scene's RNG stream derives from `--seed` and the scene index, so the
//! output is byte-identical for any worker count) and writes them to
//! stdout (or one file per scene under `--out`).
//!
//! Repeated and multi-scenario runs compile each source once: all
//! compilations go through a [`ScenarioCache`] keyed by source content
//! and world, so `--repeat R` pays one compile for `R` sampling rounds
//! (round `r` re-roots the seed at `S + r`), and the same file listed
//! twice — or reached via two paths — is compiled once.
//!
//! `bench-pool` measures what the persistent worker pool buys: it times
//! `sample_batch` per call under the scoped-spawn strategy (fresh
//! threads per call) and the persistent pool, at batch sizes 1/8/64.
//!
//! `exp` reproduces the paper's evaluation: each named experiment (or
//! `all`) drives the full sample → render → train → evaluate pipeline
//! through [`scenic::bench::harness`], prints the paper-vs-measured
//! tables, and reduces the paper's qualitative claims to shape-check
//! verdicts. Exit code 0 means every check HOLDS, 1 that one was
//! VIOLATED (or the pipeline failed), 2 a usage error. `--json` /
//! `--md` write the `scenic-exp/v1` artifact and a markdown report —
//! both byte-identical across runs and `--jobs` values (timings go to
//! stderr only).
//!
//! `serve` runs `scenicd`, the long-running scenario daemon: one shared
//! worker pool and compiled-scenario cache serve every client, and
//! sampled scenes stream back as they complete. `client` talks to it;
//! `scenic client sample` output is **byte-identical** to
//! `scenic sample` for the same scenario, seed, and format (both render
//! through [`scenic::serve::format`], and scene RNG streams depend only
//! on the seed and scene index).

use scenic::core::cache::source_hash;
use scenic::core::compile::Engine;
use scenic::core::diag::{render_json, render_line, render_text, Diagnostic, Severity};
use scenic::core::prune::{PruneDecision, PrunePlan};
use scenic::core::sampler::{Sampler, SamplerConfig, SamplerStats};
use scenic::core::{
    analyze, batch_digest, compile_with_world, ArtifactStore, LedgerKey, PruneParams,
    ScenarioCache, ScenicError, StoreError, World,
};
use scenic::prelude::{Scene, Vec2};
use scenic::serve::format::{file_extension, render_scene};
use scenic::serve::proto::{Request, Response, SampleRequest};
use scenic::serve::{Client, ClientError, Server};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// A run-time failure: scenic-language errors carry the file and source
/// so `main` can render them through the diagnostics renderer; anything
/// else (IO, bad values) stays a plain message.
enum CliError {
    Scenic {
        file: String,
        source: String,
        err: ScenicError,
    },
    Other(String),
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::Other(message)
    }
}

fn scenic_err(file: &str, source: &str, err: ScenicError) -> CliError {
    CliError::Scenic {
        file: file.to_string(),
        source: source.to_string(),
        err,
    }
}

const USAGE: &str = "\
usage:
  scenic check  <file>... [--world gta|mars|bare]
  scenic lint   <file>... [--world gta|mars|bare] [--deny warnings]
                [--format text|json]
  scenic print  <file>...
  scenic sample <file>... [--world gta|mars|bare] [-n N] [--seed S]
                [--jobs J] [--repeat R] [--prune[=off]]
                [--engine ast|compiled]
                [--format json|gta|wbt|summary] [--out DIR]
                [--stats] [--ppm]
  scenic prune-report <file>... [--world W] [-n N] [--seed S] [--jobs J]
                [--min-radius R] [--heading LO,HI] [--heading-tolerance D]
                [--max-distance M] [--min-width W]
  scenic bench-pool <file>... [--world gta|mars|bare] [--jobs J] [--seed S]
  scenic exp    <name>... [--scale S] [--seed N] [--jobs J]
                [--json PATH] [--md PATH]
  scenic store  verify [--store DIR]
  scenic serve  [--host H] [--port P]
  scenic client <action> [<file>...] [--addr HOST:PORT]
                [sample/lint options]

options:
  --world W     world/library to compile against (default: gta)
  --store DIR   on-disk artifact store directory. Default: the
                SCENIC_STORE environment variable, else ~/.cache/scenic
                (SCENIC_STORE=off, an empty value, or --no-store
                disables the store)
  --no-store    compile in-memory only; never touch the artifact store
  --deny warnings
                (lint) exit 1 when any warning fires
  -n N          number of scenes to sample (default: 1)
  --seed S      RNG seed (default: 0)
  --jobs J      sampling worker threads (default: all cores; output is
                identical for every J)
  --repeat R    sampling rounds per scenario (default: 1); each source
                is compiled once and round r uses seed S + r
  --prune[=off] run the §5.2 prune guards (default: on). Guards derive
                automatically from the scenario and never change which
                scenes are sampled — only how early doomed candidate
                runs are abandoned; --prune=off disables them
  --engine E    candidate evaluation engine: compiled (default) runs the
                lowered draw path (constants folded, library prefix
                hoisted, construction staged); ast runs the reference
                tree-walking interpreter. Scenes are byte-identical
                either way
  --format F    output format: sample takes json|gta|wbt|summary (default
                summary); lint takes text|json (default text)
  --out DIR     write one file per scene instead of stdout
  --stats       print rejection-sampling, pruning, and compile-cache
                statistics to stderr
  --ppm         also write a top-down scene_NNNN.ppm (needs --out)
  --scale S     (exp) dataset scale factor, positive (default 1.0)
  --json PATH   (exp) write the scenic-exp/v1 JSON artifact
  --md PATH     (exp) write a markdown report

`prune-report` regenerates the paper's Appendix D pruning comparison
from one guarded batch per scenario: candidates whose draws land
outside the pruned regions are counted (and abandoned early), so the
unpruned and pruned iterations-per-scene columns come from a single
run. Pruner parameters start from the derived ones and are overridden
by --min-radius (m), --heading LO,HI (deg, relative-heading interval
enabling orientation pruning), --heading-tolerance (deg),
--max-distance (m), and --min-width (m, enabling size pruning).

`bench-pool` compares scoped-spawn vs persistent-pool batch sampling
per call at batch sizes 1/8/64 (its --jobs defaults to 8).

`store verify` audits the artifact store's digest ledger: every
recorded sampling run is replayed from the stored compiled artifact
and its batch digest compared against the pinned one. Entries whose
artifact is missing (or whose world this binary cannot rebuild) are
skipped with a warning; a digest mismatch is reported as diagnostic
E301 (store-digest-divergence) and exits 1.

`exp` reproduces the paper's evaluation tables/figures end-to-end
(sample → render → train → evaluate the surrogate detector). <name> is
one of table6, table7, table8, table9, table10, fig36, conditions,
pruning, ablation, or all. --scale scales dataset sizes (default 1.0);
--seed overrides the per-experiment default seeds; --json/--md write
the scenic-exp/v1 artifact and a markdown report (byte-identical for
any --jobs). Exit 0 iff every shape check HOLDS, 1 on a VIOLATED
check, 2 on usage errors.

`serve` runs scenicd, the long-running scenario daemon (--host default
127.0.0.1, --port default 7907): all clients share one worker pool and
one compiled-scenario cache, and sampled scenes stream back as they
complete. `client` sends one action to a running daemon:
  scenic client sample <file>...   sample via the daemon; output is
                byte-identical to `scenic sample` for the same options
                (-n, --seed, --jobs, --repeat, --prune, --engine,
                --format all apply; --timeout-ms sets the daemon-side
                request deadline)
  scenic client compile <file>...  warm the daemon's scenario cache
  scenic client lint <file>...     lint via the daemon
  scenic client status             summary daemon statistics
  scenic client stats              statistics with per-scenario rows
  scenic client health             liveness probe
  scenic client shutdown           graceful daemon shutdown
";

struct Options {
    command: String,
    files: Vec<String>,
    world: String,
    n: usize,
    seed: u64,
    /// Whether `--seed` was given explicitly (`exp` distinguishes
    /// per-experiment default seeds from a user override).
    seed_given: bool,
    /// `None` until `--jobs` is given: `sample` defaults to all cores,
    /// `bench-pool` to 8 (the worker count the pool is sized against).
    jobs: Option<usize>,
    repeat: usize,
    format: String,
    out: Option<String>,
    stats: bool,
    ppm: bool,
    /// `lint --deny warnings`: warnings fail the exit status.
    deny_warnings: bool,
    /// §5.2 prune guards during `sample` (on by default; guards never
    /// change the sampled scenes, only how early doomed runs die).
    prune: bool,
    /// Candidate evaluation engine for `sample` (compiled by default;
    /// scenes are byte-identical under either engine).
    engine: Engine,
    /// `prune-report` parameter overrides (on top of the derived ones).
    min_radius: Option<f64>,
    heading: Option<(f64, f64)>,
    heading_tolerance: Option<f64>,
    max_distance: Option<f64>,
    min_width: Option<f64>,
    /// `serve` bind host.
    host: String,
    /// `serve` bind port.
    port: u16,
    /// `client` daemon address.
    addr: String,
    /// `client sample` daemon-side request deadline override.
    timeout_ms: Option<u64>,
    /// `exp` dataset scale factor.
    scale: f64,
    /// `exp` machine-readable artifact path (`scenic-exp/v1` JSON).
    json_out: Option<String>,
    /// `exp` markdown report path.
    md_out: Option<String>,
    /// `--store DIR`: explicit artifact store directory.
    store: Option<String>,
    /// `--no-store`: never touch the on-disk artifact store.
    no_store: bool,
}

fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn parse_args(mut args: std::env::Args) -> Result<Options, String> {
    args.next(); // program name
    let command = args.next().ok_or("missing command")?;
    if command == "--help" || command == "-h" || command == "help" {
        return Err(String::new());
    }
    let mut options = Options {
        command,
        files: Vec::new(),
        world: "gta".into(),
        n: 1,
        seed: 0,
        seed_given: false,
        jobs: None,
        repeat: 1,
        format: "summary".into(),
        out: None,
        stats: false,
        ppm: false,
        deny_warnings: false,
        prune: true,
        engine: Engine::default(),
        min_radius: None,
        heading: None,
        heading_tolerance: None,
        max_distance: None,
        min_width: None,
        host: "127.0.0.1".into(),
        port: 7907,
        addr: "127.0.0.1:7907".into(),
        timeout_ms: None,
        scale: 1.0,
        json_out: None,
        md_out: None,
        store: None,
        no_store: false,
    };
    let mut args = args.peekable();
    let mut format_given = false;
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--world" => options.world = take("--world")?,
            "-n" => {
                options.n = take("-n")?
                    .parse()
                    .map_err(|_| "-n needs a positive integer")?;
            }
            "--seed" => {
                options.seed = take("--seed")?
                    .parse()
                    .map_err(|_| "--seed needs an integer")?;
                options.seed_given = true;
            }
            "--scale" => {
                options.scale = take("--scale")?
                    .parse()
                    .ok()
                    .filter(|s: &f64| s.is_finite() && *s > 0.0)
                    .ok_or("--scale needs a positive number")?;
            }
            "--json" => options.json_out = Some(take("--json")?),
            "--md" => options.md_out = Some(take("--md")?),
            "--jobs" => {
                options.jobs = Some(
                    take("--jobs")?
                        .parse()
                        .ok()
                        .filter(|j| *j > 0)
                        .ok_or("--jobs needs a positive integer")?,
                );
            }
            "--repeat" => {
                options.repeat = take("--repeat")?
                    .parse()
                    .ok()
                    .filter(|r| *r > 0)
                    .ok_or("--repeat needs a positive integer")?;
            }
            "--format" => {
                options.format = take("--format")?;
                format_given = true;
            }
            "--deny" => {
                let what = take("--deny")?;
                if what != "warnings" {
                    return Err(format!("unknown --deny value `{what}` (expected warnings)"));
                }
                options.deny_warnings = true;
            }
            "--out" => options.out = Some(take("--out")?),
            "--store" => options.store = Some(take("--store")?),
            "--no-store" => options.no_store = true,
            "--stats" => options.stats = true,
            "--ppm" => options.ppm = true,
            "--prune" | "--prune=on" => options.prune = true,
            "--prune=off" => options.prune = false,
            "--engine" => options.engine = take("--engine")?.parse()?,
            other if other.starts_with("--prune=") => {
                return Err(format!(
                    "unknown --prune value `{other}` (expected on or off)"
                ));
            }
            "--min-radius" => {
                options.min_radius = Some(
                    take("--min-radius")?
                        .parse()
                        .map_err(|_| "--min-radius needs a number (meters)")?,
                );
            }
            "--heading" => {
                let raw = take("--heading")?;
                let (lo, hi) = raw
                    .split_once(',')
                    .and_then(|(lo, hi)| Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?)))
                    .ok_or("--heading needs LO,HI in degrees (e.g. 150,210)")?;
                options.heading = Some((lo, hi));
            }
            "--heading-tolerance" => {
                options.heading_tolerance = Some(
                    take("--heading-tolerance")?
                        .parse()
                        .map_err(|_| "--heading-tolerance needs a number (degrees)")?,
                );
            }
            "--max-distance" => {
                options.max_distance = Some(
                    take("--max-distance")?
                        .parse()
                        .map_err(|_| "--max-distance needs a number (meters)")?,
                );
            }
            "--min-width" => {
                options.min_width = Some(
                    take("--min-width")?
                        .parse()
                        .map_err(|_| "--min-width needs a number (meters)")?,
                );
            }
            "--host" => options.host = take("--host")?,
            "--port" => {
                options.port = take("--port")?
                    .parse()
                    .map_err(|_| "--port needs a port number")?;
            }
            "--addr" => options.addr = take("--addr")?,
            "--timeout-ms" => {
                options.timeout_ms = Some(
                    take("--timeout-ms")?
                        .parse()
                        .map_err(|_| "--timeout-ms needs a number (milliseconds)")?,
                );
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            _ => options.files.push(arg),
        }
    }
    if options.files.is_empty() && options.command != "serve" {
        return Err(match options.command.as_str() {
            "client" => {
                "client needs an action (sample, compile, lint, status, stats, health, shutdown)"
                    .into()
            }
            "store" => "store needs an action (verify)".into(),
            "exp" => format!(
                "exp needs an experiment name ({}, or all)",
                scenic::bench::harness::EXPERIMENT_IDS.join(", ")
            ),
            _ => "missing input file".into(),
        });
    }
    if options.command == "exp" {
        for name in &options.files {
            // Resolve names at parse time so typos exit 2 with usage.
            scenic::bench::harness::expand(name).map_err(|e| e.to_string())?;
        }
    }
    if !matches!(options.world.as_str(), "gta" | "mars" | "bare") {
        return Err(format!(
            "unknown world `{}` (expected gta, mars, or bare)",
            options.world
        ));
    }
    if options.ppm && options.out.is_none() {
        return Err("--ppm needs --out DIR".into());
    }
    if options.command == "lint" {
        if !format_given {
            options.format = "text".into();
        }
        if !matches!(options.format.as_str(), "text" | "json") {
            return Err(format!(
                "unknown lint format `{}` (expected text or json)",
                options.format
            ));
        }
    } else if !matches!(options.format.as_str(), "json" | "gta" | "wbt" | "summary") {
        return Err(format!(
            "unknown format `{}` (expected json, gta, wbt, or summary)",
            options.format
        ));
    }
    Ok(options)
}

/// The compiled world plus whatever background polygons a top-down
/// rendering should show (the gta world's roads; nothing elsewhere).
struct LoadedWorld {
    core: World,
    background: Vec<scenic::geom::Polygon>,
}

fn build_world(name: &str) -> LoadedWorld {
    match name {
        "gta" => {
            let world = scenic::gta::World::generate(scenic::gta::MapConfig::default());
            LoadedWorld {
                core: world.core().clone(),
                background: world.map.road_polygons(),
            }
        }
        "mars" => LoadedWorld {
            core: scenic::mars::world(),
            background: Vec::new(),
        },
        _ => LoadedWorld {
            core: World::bare(),
            background: Vec::new(),
        },
    }
}

/// Resolves the on-disk artifact store for this invocation:
/// `--no-store` wins, then `--store DIR`, then the `SCENIC_STORE`
/// environment variable (`off` or an empty value disables), then the
/// default `~/.cache/scenic`. An explicitly requested directory that
/// cannot be opened is a hard error; the implicit default failing (no
/// home directory, unwritable cache) silently runs store-less — the
/// store is an optimization, not a dependency.
fn resolve_store(options: &Options) -> Result<Option<Arc<ArtifactStore>>, CliError> {
    if options.no_store {
        return Ok(None);
    }
    let explicit = options
        .store
        .clone()
        .or_else(|| std::env::var("SCENIC_STORE").ok());
    match explicit {
        Some(dir) if dir.is_empty() || dir == "off" => Ok(None),
        Some(dir) => ArtifactStore::open(&dir)
            .map(|store| Some(Arc::new(store)))
            .map_err(|e| CliError::Other(format!("store {dir}: {e}"))),
        None => Ok(ArtifactStore::default_dir()
            .and_then(|dir| ArtifactStore::open(dir).ok())
            .map(Arc::new)),
    }
}

/// A [`ScenarioCache`] layered over the resolved store (when any).
fn resolve_cache(options: &Options) -> Result<ScenarioCache, CliError> {
    Ok(match resolve_store(options)? {
        Some(store) => ScenarioCache::with_store(store),
        None => ScenarioCache::new(),
    })
}

/// Renders a 60 m top-down view centered on the ego.
fn write_ppm(
    scene: &Scene,
    background: &[scenic::geom::Polygon],
    path: &std::path::Path,
) -> Result<(), String> {
    let center = scene.ego().position_vec();
    let bounds = scenic::geom::Aabb::new(
        center - Vec2::new(30.0, 30.0),
        center + Vec2::new(30.0, 30.0),
    );
    let raster = scenic::sim::top_down(scene, background, bounds, 480, 480);
    raster
        .save_ppm(path)
        .map_err(|e| format!("{}: {e}", path.display()))
}

fn read_source(file: &str) -> Result<String, String> {
    std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))
}

/// The file-name stem a scenario's output files are prefixed with when
/// several scenarios share one `--out` directory.
fn file_stem(file: &str) -> String {
    std::path::Path::new(file)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "scenario".into())
}

/// One output-name stem per input file, disambiguated so two files with
/// the same stem in different directories (`city/crossing.scenic`,
/// `rural/crossing.scenic`) never overwrite each other's scenes in a
/// shared `--out` directory: repeated stems get a positional suffix
/// (`crossing1`, `crossing2`, …).
fn unique_stems(files: &[String]) -> Vec<String> {
    let mut counts: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for file in files {
        *counts.entry(file_stem(file)).or_default() += 1;
    }
    let mut seen: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    files
        .iter()
        .map(|file| {
            let stem = file_stem(file);
            if counts[&stem] > 1 {
                let k = seen.entry(stem.clone()).or_default();
                *k += 1;
                format!("{stem}{k}")
            } else {
                stem
            }
        })
        .collect()
}

/// One sampling round of one scenario: draw `n` scenes, write them
/// out, and return the batch digest (for the store's audit ledger).
#[allow(clippy::too_many_arguments)]
fn sample_round(
    options: &Options,
    world: &LoadedWorld,
    scenario: &scenic::core::Scenario,
    file: &str,
    source: &str,
    stem: &str,
    rep: usize,
    jobs: usize,
    total: &mut SamplerStats,
) -> Result<u64, CliError> {
    let seed = options.seed.wrapping_add(rep as u64);
    let mut sampler = Sampler::new(scenario)
        .with_seed(seed)
        .with_engine(options.engine);
    if options.prune {
        sampler = sampler.with_pruning();
    }
    let scenes = sampler
        .sample_batch(options.n, jobs)
        .map_err(|e| scenic_err(file, source, e))?;
    let digest = batch_digest(&scenes);
    // Per-scene output names must stay unique across scenarios and
    // rounds sharing one --out directory.
    let multi_file = options.files.len() > 1;
    let prefix = match (multi_file, options.repeat > 1) {
        (false, false) => String::new(),
        (false, true) => format!("r{rep:02}_"),
        (true, false) => format!("{stem}_"),
        (true, true) => format!("{stem}_r{rep:02}_"),
    };
    if options.out.is_none() && options.format == "summary" && (multi_file || options.repeat > 1) {
        println!("=== {file} (round {rep}, seed {seed}) ===");
    }
    for (i, scene) in scenes.iter().enumerate() {
        let text = render_scene(scene, &options.format);
        match &options.out {
            Some(dir) => {
                let path = std::path::Path::new(dir).join(format!(
                    "{prefix}scene_{i:04}.{}",
                    file_extension(&options.format)
                ));
                std::fs::write(&path, &text).map_err(|e| format!("{}: {e}", path.display()))?;
                eprintln!("wrote {}", path.display());
                if options.ppm {
                    let ppm_path =
                        std::path::Path::new(dir).join(format!("{prefix}scene_{i:04}.ppm"));
                    write_ppm(scene, &world.background, &ppm_path)?;
                    eprintln!("wrote {}", ppm_path.display());
                }
            }
            None => {
                if options.n > 1 && options.format == "summary" {
                    println!("--- scene {i} ---");
                }
                print!("{text}");
            }
        }
    }
    total.merge(&sampler.stats());
    Ok(digest)
}

/// Pins one sampling round's batch digest in the store's audit ledger.
/// Divergence from an already-pinned digest is the loud, typed E301
/// failure; any other ledger trouble (unwritable directory, malformed
/// ledger file) degrades to a warning — sampling already succeeded.
fn record_round(
    store: &ArtifactStore,
    options: &Options,
    source: &str,
    rep: usize,
    jobs: usize,
    digest: u64,
) -> Result<(), CliError> {
    let key = LedgerKey {
        scenario: source_hash(source),
        world: options.world.clone(),
        seed: options.seed.wrapping_add(rep as u64),
        jobs,
        n: options.n,
        engine: options.engine.to_string(),
    };
    match store.record(&key, digest) {
        Ok(_) => Ok(()),
        Err(err @ StoreError::Divergence { .. }) => {
            let d = Diagnostic::global(scenic::core::Code::StoreDigestDivergence, err.to_string());
            eprintln!("{}", render_line(&d));
            Err(CliError::Other(
                "ledger digest divergence (see diagnostic above)".into(),
            ))
        }
        Err(err) => {
            eprintln!("warning: ledger not updated: {err}");
            Ok(())
        }
    }
}

/// Mean wall-clock per call of `f`, in microseconds (one warm-up call,
/// then at least 8 timed calls or 150 ms, whichever is more).
fn time_per_call(mut f: impl FnMut()) -> f64 {
    f(); // warm-up: first pool call pays the one-time thread spawn
    let budget = std::time::Duration::from_millis(150);
    let start = std::time::Instant::now();
    let mut calls = 0u32;
    while calls < 8 || (start.elapsed() < budget && calls < 10_000) {
        f();
        calls += 1;
    }
    start.elapsed().as_secs_f64() * 1e6 / f64::from(calls)
}

/// `bench-pool`: per-call scoped-spawn vs persistent-pool comparison.
fn bench_pool(options: &Options, world: &LoadedWorld) -> Result<(), CliError> {
    let jobs = options.jobs.unwrap_or(8);
    for file in &options.files {
        let source = read_source(file)?;
        let scenario =
            compile_with_world(&source, &world.core).map_err(|e| scenic_err(file, &source, e))?;
        println!(
            "{file}: scoped-spawn vs persistent pool, jobs={jobs}, seed={}",
            options.seed
        );
        for batch in [1usize, 8, 64] {
            let scoped = time_per_call(|| {
                let mut sampler = Sampler::new(&scenario).with_seed(options.seed);
                sampler
                    .sample_batch_scoped(batch, jobs)
                    .expect("scoped batch");
            });
            let pooled = time_per_call(|| {
                let mut sampler = Sampler::new(&scenario).with_seed(options.seed);
                sampler.sample_batch(batch, jobs).expect("pooled batch");
            });
            println!(
                "  batch={batch:>2}: scoped {scoped:>9.1} µs/call, pool {pooled:>9.1} µs/call \
                 ({:+.1} µs, {:.2}x)",
                pooled - scoped,
                scoped / pooled,
            );
        }
    }
    Ok(())
}

/// One `module.name: pruner area -> area` table row per guard stage.
fn guard_table(plan: &PrunePlan) -> Vec<String> {
    let mut rows = Vec::new();
    for guard in &plan.guards {
        for effect in &guard.effects {
            rows.push(format!(
                "  {:<18} {:<12} {:>12.1} m² -> {:>12.1} m² ({:>5.1}% kept)",
                format!("{}.{}", guard.module, guard.name),
                effect.pruner.to_string(),
                effect.area_before,
                effect.area_after,
                100.0 * effect.kept_fraction(),
            ));
        }
    }
    rows
}

/// The `--stats` pruning section: the per-pruner region table plus the
/// guard rejection counters and the derived unpruned-vs-pruned
/// iteration rates (both measured from the same guarded run).
fn print_prune_stats(prune: bool, plans: &[(String, Arc<PrunePlan>)], total: &SamplerStats) {
    if !prune {
        eprintln!("pruning: off");
        return;
    }
    let guards: usize = plans.iter().map(|(_, p)| p.guards.len()).sum();
    if guards == 0 {
        eprintln!("pruning: on (no applicable guards — sampling unchanged)");
        return;
    }
    eprintln!("pruning: on ({guards} guard(s))");
    for (file, plan) in plans {
        if plan.is_empty() {
            continue;
        }
        eprintln!("  {file}:");
        for row in guard_table(plan) {
            eprintln!("  {row}");
        }
    }
    eprintln!(
        "  prune-guard rejections: {} containment, {} orientation, {} size",
        total.prune_containment_rejections,
        total.prune_orientation_rejections,
        total.prune_size_rejections,
    );
    eprintln!(
        "  iterations/scene: {:.1} unpruned-equivalent, {:.1} after pruning",
        total.iterations_per_scene(),
        total.full_iterations_per_scene(),
    );
}

/// The `--stats` derivation section: why each §5.2 pruner is on or off
/// for each scenario, as `I2xx` diagnostic lines (the same decisions
/// `scenic lint` reports).
fn print_prune_decisions(decisions: &[(String, Vec<PruneDecision>)]) {
    for (file, decs) in decisions {
        for dec in decs {
            let code = if dec.enabled {
                scenic::core::Code::PrunerEnabled
            } else {
                scenic::core::Code::PrunerDisabled
            };
            let d = Diagnostic::global(
                code,
                format!(
                    "{file}: {} pruning {}: {}",
                    dec.pruner,
                    if dec.enabled { "enabled" } else { "disabled" },
                    dec.reason
                ),
            );
            eprintln!("  {}", render_line(&d));
        }
    }
}

/// `prune-report`: the Appendix D comparison from one guarded batch per
/// scenario. The guard draws the exact unpruned candidate stream, so
/// `iterations` is the unpruned column and `full_iterations` (the
/// candidates that survived the pruned regions and were interpreted to
/// completion) is the pruned column — one run, both numbers.
fn prune_report(options: &Options, world: &LoadedWorld) -> Result<(), CliError> {
    let jobs = options.jobs.unwrap_or_else(default_jobs);
    let cache = ScenarioCache::new();
    println!("Appendix D pruning comparison (guard mode: one batch yields both columns)");
    for file in &options.files {
        let source = read_source(file)?;
        let scenario = cache
            .get_or_compile(&options.world, &source, &world.core)
            .map_err(|e| scenic_err(file, &source, e))?;
        // Derived parameters, overridden by the command-line knobs.
        let mut params: PruneParams = scenario.derived_prune_params();
        if let Some(r) = options.min_radius {
            params.min_radius = r;
        }
        if let Some((lo, hi)) = options.heading {
            params.relative_heading = Some((lo.to_radians(), hi.to_radians()));
        }
        if let Some(d) = options.heading_tolerance {
            params.heading_tolerance = d.to_radians();
        }
        if let Some(m) = options.max_distance {
            params.max_distance = m;
        }
        if let Some(w) = options.min_width {
            params.min_width = Some(w);
        }
        let plan = scenario.prune_plan_with(&params);
        println!(
            "{file}: world {}, n={}, seed={}, jobs={jobs}",
            options.world, options.n, options.seed
        );
        if plan.is_empty() {
            println!("  no applicable pruned regions: both columns are equal");
        } else {
            for row in guard_table(&plan) {
                println!("{row}");
            }
        }
        let mut sampler = Sampler::new(&scenario)
            .with_seed(options.seed)
            .with_config(SamplerConfig {
                max_iterations: 100_000,
            })
            .with_prune_params(&params);
        let start = std::time::Instant::now();
        sampler
            .sample_batch(options.n, jobs)
            .map_err(|e| scenic_err(file, &source, e))?;
        let elapsed_ms = start.elapsed().as_secs_f64() * 1000.0;
        let stats = sampler.stats();
        let unpruned = stats.iterations_per_scene();
        let pruned = stats.full_iterations_per_scene();
        println!(
            "  iters/scene: {:.1} unpruned, {:.1} pruned ({:.2}x fewer); \
             {} of {} candidates guard-pruned; {:.1} ms/scene wall-clock",
            unpruned,
            pruned,
            unpruned / pruned,
            stats.prune_rejections(),
            stats.iterations,
            elapsed_ms / options.n.max(1) as f64,
        );
    }
    Ok(())
}

fn client_err(e: ClientError) -> CliError {
    CliError::Other(e.to_string())
}

/// The `--stats` disk-tier section: per-tier counters of the artifact
/// store plus the audit-ledger activity, or `store: off`.
fn print_store_stats(store: Option<&Arc<ArtifactStore>>) {
    match store {
        Some(store) => {
            eprintln!(
                "store {}: {} disk hit(s), {} disk miss(es), {} corrupt entr{}, {} write(s)",
                store.base().display(),
                store.disk_hits(),
                store.disk_misses(),
                store.corrupt_entries(),
                if store.corrupt_entries() == 1 {
                    "y"
                } else {
                    "ies"
                },
                store.writes(),
            );
            eprintln!(
                "ledger: {} digest(s) recorded, {} confirmed",
                store.ledger_recorded(),
                store.ledger_confirmed(),
            );
        }
        None => eprintln!("store: off"),
    }
}

/// `store verify`: replay every ledger entry from the stored artifact
/// and compare batch digests. Skips (with a stderr warning) entries
/// whose artifact is gone or whose world/engine this binary cannot
/// rebuild; reports divergences as E301 diagnostics and exits 1.
fn store_verify(options: &Options) -> Result<ExitCode, CliError> {
    let store = resolve_store(options)?.ok_or_else(|| {
        CliError::Other(
            "store verify: no store configured (pass --store DIR or set SCENIC_STORE)".into(),
        )
    })?;
    let entries = store.ledger_entries().map_err(|e| e.to_string())?;
    let total = entries.len();
    let mut worlds: std::collections::HashMap<String, LoadedWorld> =
        std::collections::HashMap::new();
    let (mut verified, mut skipped) = (0usize, 0usize);
    let mut diverged = false;
    for (key, recorded) in entries {
        if !matches!(key.world.as_str(), "gta" | "mars" | "bare") {
            eprintln!(
                "skipping {:016x} ({}): this binary cannot rebuild that world",
                key.scenario, key.world
            );
            skipped += 1;
            continue;
        }
        let engine = match key.engine.parse::<Engine>() {
            Ok(engine) => engine,
            Err(_) => {
                eprintln!(
                    "skipping {:016x} ({}): unknown engine `{}`",
                    key.scenario, key.world, key.engine
                );
                skipped += 1;
                continue;
            }
        };
        let world = worlds
            .entry(key.world.clone())
            .or_insert_with(|| build_world(&key.world));
        let Some(scenario) = store.load_by_hash(&key.world, key.scenario, &world.core) else {
            eprintln!(
                "skipping {:016x} ({}): artifact not in store (evicted or never written here)",
                key.scenario, key.world
            );
            skipped += 1;
            continue;
        };
        let mut sampler = Sampler::new(&scenario)
            .with_seed(key.seed)
            .with_engine(engine);
        let scenes = sampler
            .sample_batch(key.n, key.jobs.max(1))
            .map_err(|e| format!("resampling {:016x} ({}): {e}", key.scenario, key.world))?;
        let fresh = batch_digest(&scenes);
        if fresh == recorded {
            verified += 1;
        } else {
            let err = StoreError::Divergence {
                key,
                recorded,
                fresh,
            };
            let d = Diagnostic::global(scenic::core::Code::StoreDigestDivergence, err.to_string());
            eprintln!("{}", render_line(&d));
            diverged = true;
        }
    }
    println!(
        "store {}: {verified} of {total} ledger entr{} verified, {skipped} skipped, {} diverged",
        store.base().display(),
        if total == 1 { "y" } else { "ies" },
        total - verified - skipped,
    );
    Ok(if diverged {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

/// `store`: audit subcommands for the on-disk artifact store.
fn store_command(options: &Options) -> Result<ExitCode, CliError> {
    let (action, _) = options
        .files
        .split_first()
        .expect("parse_args requires an action");
    match action.as_str() {
        "verify" => store_verify(options),
        other => Err(format!("unknown store action `{other}` (expected verify)").into()),
    }
}

/// `exp`: reproduce the paper's experiments through the shared harness.
/// Everything on stdout and in the `--json`/`--md` artifacts is
/// deterministic (identical across runs and `--jobs` values); timings
/// and work counters go to stderr.
fn exp_command(options: &Options) -> Result<ExitCode, CliError> {
    use scenic::bench::harness::{self, ExpConfig};
    use scenic::bench::report::{self, RunConfig};

    let cfg = ExpConfig {
        scale: options.scale,
        seed: options.seed_given.then_some(options.seed),
        jobs: options.jobs.unwrap_or_else(default_jobs),
    };
    let mut ids: Vec<&'static str> = Vec::new();
    for name in &options.files {
        for id in harness::expand(name).map_err(|e| e.to_string())? {
            if !ids.contains(&id) {
                ids.push(id);
            }
        }
    }
    // Persist experiment compiles across processes: repeated `exp`
    // runs skip straight to sampling.
    if let Some(store) = resolve_store(options)? {
        scenic::bench::install_store(store);
    }
    let world = scenic::bench::standard_world();
    let mut reports = Vec::new();
    for id in ids {
        let report = harness::run_experiment(id, &world, &cfg).map_err(|e| e.to_string())?;
        print!("{}", report.to_text());
        println!();
        eprintln!(
            "[{id}] {:.0} ms: {} scenes sampled, {} images rendered, {} sampler iterations",
            report.wall_ms,
            report.counters.scenes,
            report.counters.images,
            report.counters.iterations
        );
        reports.push(report);
    }
    let run_config = RunConfig {
        scale: cfg.scale,
        seed: cfg.seed,
    };
    if let Some(path) = &options.json_out {
        std::fs::write(path, report::to_json(&reports, &run_config))
            .map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = &options.md_out {
        std::fs::write(path, report::to_markdown(&reports, &run_config))
            .map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if options.stats {
        let cache = scenic::bench::exp_cache();
        eprintln!(
            "compiled {} scenario(s), {} cache hit(s)",
            cache.misses(),
            cache.hits(),
        );
        print_store_stats(cache.store());
    }
    let held: usize = reports
        .iter()
        .flat_map(|r| &r.checks)
        .filter(|c| c.holds)
        .count();
    let total: usize = reports.iter().map(|r| r.checks.len()).sum();
    println!("{held}/{total} shape checks hold");
    Ok(if held == total {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// `serve`: run the scenicd daemon on the calling thread until a client
/// asks it to shut down.
fn serve(options: &Options) -> Result<ExitCode, CliError> {
    let addr = format!("{}:{}", options.host, options.port);
    // A store-backed daemon cache survives restarts: a warm store
    // serves the first request after a restart without recompiling.
    let config = scenic::serve::ServerConfig {
        store: resolve_store(options)?,
        ..scenic::serve::ServerConfig::default()
    };
    let server = Server::bind_with(addr.as_str(), config).map_err(|e| format!("{addr}: {e}"))?;
    let local = server.local_addr().map_err(|e| e.to_string())?;
    // Scripts (and the CI smoke test) parse this line for the port, so
    // it must hit the pipe before the accept loop blocks.
    println!("scenicd listening on {local}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.run().map_err(|e| e.to_string())?;
    eprintln!("scenicd: shut down");
    Ok(ExitCode::SUCCESS)
}

/// Print a chunk of streamed output, exiting quietly if the reader
/// went away. Scenes arrive over seconds, so a downstream
/// `| head`-style consumer routinely closes the pipe mid-stream; that
/// is a normal end of output (exit 0, like other Unix streamers), not
/// a panic.
fn stream_print(text: std::fmt::Arguments) {
    use std::io::Write as _;
    if let Err(e) = std::io::stdout().write_fmt(text) {
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        panic!("failed printing to stdout: {e}");
    }
}

/// `client sample`: stream batches from the daemon, printing exactly
/// what `scenic sample` prints for the same options (same separators,
/// same renderer, same per-round seeds) — byte-identical output.
fn client_sample(options: &Options, client: &mut Client, files: &[String]) -> Result<(), CliError> {
    let multi_file = files.len() > 1;
    for file in files {
        let source = read_source(file)?;
        for rep in 0..options.repeat {
            let seed = options.seed.wrapping_add(rep as u64);
            if options.format == "summary" && (multi_file || options.repeat > 1) {
                stream_print(format_args!("=== {file} (round {rep}, seed {seed}) ===\n"));
            }
            let request = SampleRequest {
                source: source.clone(),
                world: options.world.clone(),
                name: file_stem(file),
                n: options.n,
                seed,
                jobs: options.jobs.unwrap_or(0),
                prune: options.prune,
                engine: options.engine.to_string(),
                format: options.format.clone(),
                timeout_ms: options.timeout_ms,
            };
            client
                .sample(&request, |i, text| {
                    if options.n > 1 && options.format == "summary" {
                        stream_print(format_args!("--- scene {i} ---\n"));
                    }
                    stream_print(format_args!("{text}"));
                })
                .map_err(client_err)?;
        }
    }
    Ok(())
}

/// `client`: one action against a running daemon.
fn client_command(options: &Options) -> Result<ExitCode, CliError> {
    let (action, files) = options
        .files
        .split_first()
        .expect("parse_args requires an action");
    let mut client = Client::connect_retry(options.addr.as_str(), Duration::from_secs(5))
        .map_err(|e| format!("{}: {e}", options.addr))?;
    match action.as_str() {
        "sample" => {
            if files.is_empty() {
                return Err("client sample needs at least one file".to_string().into());
            }
            client_sample(options, &mut client, files)?;
            Ok(ExitCode::SUCCESS)
        }
        "compile" => {
            if files.is_empty() {
                return Err("client compile needs at least one file".to_string().into());
            }
            for file in files {
                let source = read_source(file)?;
                match client
                    .request(&Request::Compile {
                        source,
                        world: options.world.clone(),
                    })
                    .map_err(client_err)?
                {
                    Response::Compiled {
                        cached,
                        source_hash,
                    } => println!(
                        "{file}: compiled ({}, hash {source_hash:016x})",
                        if cached { "cache hit" } else { "cached now" },
                    ),
                    other => return Err(format!("unexpected daemon reply: {other:?}").into()),
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        "lint" => {
            if files.is_empty() {
                return Err("client lint needs at least one file".to_string().into());
            }
            let mut any_error = false;
            for file in files {
                let source = read_source(file)?;
                match client
                    .request(&Request::Lint {
                        file: file.clone(),
                        source,
                        world: options.world.clone(),
                    })
                    .map_err(client_err)?
                {
                    Response::Lint {
                        text,
                        errors,
                        warnings,
                        infos,
                    } => {
                        print!("{text}");
                        eprintln!(
                            "{file}: {errors} error(s), {warnings} warning(s), {infos} note(s)"
                        );
                        any_error |= errors > 0;
                    }
                    other => return Err(format!("unexpected daemon reply: {other:?}").into()),
                }
            }
            Ok(if any_error {
                ExitCode::from(2)
            } else {
                ExitCode::SUCCESS
            })
        }
        "status" | "stats" => {
            let stats = client.stats(action == "stats").map_err(client_err)?;
            println!(
                "scenicd up {:.1} s: {} request(s), {} in flight, {} scene(s) served",
                stats.uptime_ms as f64 / 1000.0,
                stats.requests,
                stats.in_flight,
                stats.scenes_served,
            );
            println!(
                "cache: {} scenario(s), {} hit(s), {} miss(es); {} protocol error(s)",
                stats.cache_entries, stats.cache_hits, stats.cache_misses, stats.protocol_errors,
            );
            if !stats.store_dir.is_empty() {
                println!(
                    "store {}: {} disk hit(s), {} disk miss(es), {} corrupt, {} write(s)",
                    stats.store_dir,
                    stats.disk_hits,
                    stats.disk_misses,
                    stats.disk_corrupt,
                    stats.disk_writes,
                );
            }
            for (name, scenes) in &stats.per_scenario {
                println!("  {name}: {scenes} scene(s)");
            }
            Ok(ExitCode::SUCCESS)
        }
        "health" => {
            let uptime_ms = client.health().map_err(client_err)?;
            println!("ok (up {uptime_ms} ms)");
            Ok(ExitCode::SUCCESS)
        }
        "shutdown" => {
            client.shutdown().map_err(client_err)?;
            println!("scenicd shutting down");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!(
            "unknown client action `{other}` (expected sample, compile, lint, status, stats, \
             health, or shutdown)"
        )
        .into()),
    }
}

fn run(options: &Options) -> Result<ExitCode, CliError> {
    match options.command.as_str() {
        "print" => {
            for file in &options.files {
                let source = read_source(file)?;
                let program = scenic::lang::parse(&source)
                    .map_err(|e| scenic_err(file, &source, ScenicError::Parse(e)))?;
                print!("{}", scenic::lang::print_program(&program));
            }
            Ok(ExitCode::SUCCESS)
        }
        "check" => {
            let world = build_world(&options.world);
            let cache = resolve_cache(options)?;
            let mut failed = false;
            for file in &options.files {
                let source = read_source(file)?;
                match cache.get_or_compile(&options.world, &source, &world.core) {
                    Ok(scenario) => {
                        let diags = analyze(&scenario);
                        // `check` reports problems; the I2xx pruning
                        // narration stays in `lint` and `--stats`.
                        let shown: Vec<Diagnostic> = diags
                            .iter()
                            .filter(|d| d.severity > Severity::Info)
                            .cloned()
                            .collect();
                        if !shown.is_empty() {
                            eprint!("{}", render_text(&shown, file, &source));
                        }
                        if shown.iter().any(|d| d.severity == Severity::Error) {
                            failed = true;
                        } else {
                            eprintln!("{file}: ok");
                        }
                    }
                    Err(err) => {
                        let d = Diagnostic::from_error(&err);
                        eprint!("{}", render_text(&[d], file, &source));
                        failed = true;
                    }
                }
            }
            Ok(if failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            })
        }
        "lint" => {
            let world = build_world(&options.world);
            let cache = resolve_cache(options)?;
            let mut any_error = false;
            let mut any_warning = false;
            for file in &options.files {
                let source = read_source(file)?;
                let diags = match cache.get_or_compile(&options.world, &source, &world.core) {
                    Ok(scenario) => analyze(&scenario),
                    Err(err) => vec![Diagnostic::from_error(&err)],
                };
                any_error |= diags.iter().any(|d| d.severity == Severity::Error);
                any_warning |= diags.iter().any(|d| d.severity == Severity::Warning);
                if options.format == "json" {
                    print!("{}", render_json(&diags, file));
                } else {
                    print!("{}", render_text(&diags, file, &source));
                    let count = |s: Severity| diags.iter().filter(|d| d.severity == s).count();
                    eprintln!(
                        "{file}: {} error(s), {} warning(s), {} note(s)",
                        count(Severity::Error),
                        count(Severity::Warning),
                        count(Severity::Info),
                    );
                }
            }
            Ok(if any_error {
                ExitCode::from(2)
            } else if any_warning && options.deny_warnings {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            })
        }
        "sample" => {
            let world = build_world(&options.world);
            let jobs = options.jobs.unwrap_or_else(default_jobs);
            if let Some(dir) = &options.out {
                std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
            }
            // One cache for the whole invocation: a scenario listed
            // twice, or sampled for --repeat rounds, compiles once (and
            // prunes once: the plan is cached on the compiled scenario).
            // With a store resolved, the compile is skipped entirely
            // when a previous process persisted the same scenario.
            let cache = resolve_cache(options)?;
            let mut total = SamplerStats::default();
            let mut plans: Vec<(String, Arc<PrunePlan>)> = Vec::new();
            let mut decisions: Vec<(String, Vec<PruneDecision>)> = Vec::new();
            let stems = unique_stems(&options.files);
            for (file, stem) in options.files.iter().zip(&stems) {
                let source = read_source(file)?;
                for rep in 0..options.repeat {
                    let scenario = cache
                        .get_or_compile(&options.world, &source, &world.core)
                        .map_err(|e| scenic_err(file, &source, e))?;
                    if rep == 0 && options.stats {
                        if options.prune {
                            plans.push((file.clone(), scenario.prune_plan()));
                        }
                        decisions.push((file.clone(), scenario.derived_prune_decisions()));
                    }
                    let digest = sample_round(
                        options, &world, &scenario, file, &source, stem, rep, jobs, &mut total,
                    )?;
                    if let Some(store) = cache.store() {
                        record_round(store, options, &source, rep, jobs, digest)?;
                    }
                }
            }
            if options.stats {
                eprintln!("engine: {}", options.engine);
                eprintln!(
                    "{} scenes, {} iterations ({:.1}/scene); rejections: \
                     {} requirement, {} collision, {} containment, {} visibility",
                    total.scenes,
                    total.iterations,
                    total.iterations_per_scene(),
                    total.requirement_rejections,
                    total.collision_rejections,
                    total.containment_rejections,
                    total.visibility_rejections,
                );
                print_prune_stats(options.prune, &plans, &total);
                print_prune_decisions(&decisions);
                eprintln!(
                    "compiled {} scenario(s), {} cache hit(s)",
                    cache.misses(),
                    cache.hits(),
                );
                print_store_stats(cache.store());
            }
            Ok(ExitCode::SUCCESS)
        }
        "prune-report" => {
            let world = build_world(&options.world);
            prune_report(options, &world)?;
            Ok(ExitCode::SUCCESS)
        }
        "bench-pool" => {
            let world = build_world(&options.world);
            bench_pool(options, &world)?;
            Ok(ExitCode::SUCCESS)
        }
        "exp" => exp_command(options),
        "store" => store_command(options),
        "serve" => serve(options),
        "client" => client_command(options),
        other => Err(CliError::Other(format!("unknown command `{other}`"))),
    }
}

fn main() -> ExitCode {
    match parse_args(std::env::args()) {
        Ok(options) => match run(&options) {
            Ok(code) => code,
            Err(CliError::Scenic { file, source, err }) => {
                let d = Diagnostic::from_error(&err);
                eprint!("{}", render_text(&[d], &file, &source));
                ExitCode::FAILURE
            }
            Err(CliError::Other(message)) => {
                eprintln!("error: {message}");
                ExitCode::FAILURE
            }
        },
        Err(message) => {
            if !message.is_empty() {
                eprintln!("error: {message}\n");
            }
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
