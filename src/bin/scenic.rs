//! `scenic` — the command-line front end.
//!
//! Mirrors how the paper's tool flow (§2, Fig. 2) is driven in practice:
//! a `.scenic` file goes in, sampled scenes come out in a simulator's
//! input format.
//!
//! ```text
//! scenic check  <file> [--world gta|mars|bare]
//! scenic print  <file>
//! scenic sample <file> [--world W] [-n N] [--seed S] [--jobs J]
//!               [--format json|gta|wbt|summary] [--out DIR] [--stats]
//! ```
//!
//! `check` parses and compiles (reporting the first error with its
//! position), `print` re-emits the canonical pretty-printed source, and
//! `sample` draws `N` scenes by deterministic parallel rejection
//! sampling (`--jobs` workers; every scene's RNG stream derives from
//! `--seed` and the scene index, so the output is byte-identical for any
//! worker count) and writes them to stdout (or one file per scene under
//! `--out`).

use scenic::core::sampler::Sampler;
use scenic::core::{compile_with_world, World};
use scenic::prelude::{Scene, Vec2};
use std::process::ExitCode;

const USAGE: &str = "\
usage:
  scenic check  <file> [--world gta|mars|bare]
  scenic print  <file>
  scenic sample <file> [--world gta|mars|bare] [-n N] [--seed S]
                [--jobs J] [--format json|gta|wbt|summary] [--out DIR]
                [--stats] [--ppm]

options:
  --world W     world/library to compile against (default: gta)
  -n N          number of scenes to sample (default: 1)
  --seed S      RNG seed (default: 0)
  --jobs J      sampling worker threads (default: all cores; output is
                identical for every J)
  --format F    output format (default: summary)
  --out DIR     write one file per scene instead of stdout
  --stats       print rejection-sampling statistics to stderr
  --ppm         also write a top-down scene_NNNN.ppm (needs --out)
";

struct Options {
    command: String,
    file: String,
    world: String,
    n: usize,
    seed: u64,
    jobs: usize,
    format: String,
    out: Option<String>,
    stats: bool,
    ppm: bool,
}

fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn parse_args(mut args: std::env::Args) -> Result<Options, String> {
    args.next(); // program name
    let command = args.next().ok_or("missing command")?;
    if command == "--help" || command == "-h" || command == "help" {
        return Err(String::new());
    }
    let mut options = Options {
        command,
        file: String::new(),
        world: "gta".into(),
        n: 1,
        seed: 0,
        jobs: default_jobs(),
        format: "summary".into(),
        out: None,
        stats: false,
        ppm: false,
    };
    let mut positional = Vec::new();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--world" => options.world = take("--world")?,
            "-n" => {
                options.n = take("-n")?
                    .parse()
                    .map_err(|_| "-n needs a positive integer")?;
            }
            "--seed" => {
                options.seed = take("--seed")?
                    .parse()
                    .map_err(|_| "--seed needs an integer")?;
            }
            "--jobs" => {
                options.jobs = take("--jobs")?
                    .parse()
                    .ok()
                    .filter(|j| *j > 0)
                    .ok_or("--jobs needs a positive integer")?;
            }
            "--format" => options.format = take("--format")?,
            "--out" => options.out = Some(take("--out")?),
            "--stats" => options.stats = true,
            "--ppm" => options.ppm = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            _ => positional.push(arg),
        }
    }
    match positional.len() {
        0 => return Err("missing input file".into()),
        1 => options.file = positional.remove(0),
        _ => return Err(format!("unexpected argument `{}`", positional[1])),
    }
    if !matches!(options.world.as_str(), "gta" | "mars" | "bare") {
        return Err(format!(
            "unknown world `{}` (expected gta, mars, or bare)",
            options.world
        ));
    }
    if options.ppm && options.out.is_none() {
        return Err("--ppm needs --out DIR".into());
    }
    if !matches!(options.format.as_str(), "json" | "gta" | "wbt" | "summary") {
        return Err(format!(
            "unknown format `{}` (expected json, gta, wbt, or summary)",
            options.format
        ));
    }
    Ok(options)
}

/// The compiled world plus whatever background polygons a top-down
/// rendering should show (the gta world's roads; nothing elsewhere).
struct LoadedWorld {
    core: World,
    background: Vec<scenic::geom::Polygon>,
}

fn build_world(name: &str) -> LoadedWorld {
    match name {
        "gta" => {
            let world = scenic::gta::World::generate(scenic::gta::MapConfig::default());
            LoadedWorld {
                core: world.core().clone(),
                background: world.map.road_polygons(),
            }
        }
        "mars" => LoadedWorld {
            core: scenic::mars::world(),
            background: Vec::new(),
        },
        _ => LoadedWorld {
            core: World::bare(),
            background: Vec::new(),
        },
    }
}

/// Renders a 60 m top-down view centered on the ego.
fn write_ppm(
    scene: &Scene,
    background: &[scenic::geom::Polygon],
    path: &std::path::Path,
) -> Result<(), String> {
    let center = scene.ego().position_vec();
    let bounds = scenic::geom::Aabb::new(
        center - Vec2::new(30.0, 30.0),
        center + Vec2::new(30.0, 30.0),
    );
    let raster = scenic::sim::top_down(scene, background, bounds, 480, 480);
    raster
        .save_ppm(path)
        .map_err(|e| format!("{}: {e}", path.display()))
}

fn render(scene: &Scene, format: &str) -> String {
    match format {
        "json" => scene.to_json(),
        "gta" => scenic::sim::to_gta_json_lines(scene),
        "wbt" => scenic::sim::to_webots_world(scene),
        _ => {
            let mut out = String::new();
            for obj in &scene.objects {
                let tag = if obj.is_ego { " (ego)" } else { "" };
                out.push_str(&format!(
                    "{}{tag} at ({:.2}, {:.2}) facing {:.1}°, {:.1}×{:.1} m\n",
                    obj.class,
                    obj.position[0],
                    obj.position[1],
                    obj.heading.to_degrees(),
                    obj.width,
                    obj.height,
                ));
            }
            out
        }
    }
}

fn file_extension(format: &str) -> &'static str {
    match format {
        "json" => "json",
        "gta" => "gta.jsonl",
        "wbt" => "wbt",
        _ => "txt",
    }
}

fn run(options: &Options) -> Result<(), String> {
    let source =
        std::fs::read_to_string(&options.file).map_err(|e| format!("{}: {e}", options.file))?;

    match options.command.as_str() {
        "print" => {
            let program = scenic::lang::parse(&source).map_err(|e| e.to_string())?;
            print!("{}", scenic::lang::print_program(&program));
            Ok(())
        }
        "check" => {
            let world = build_world(&options.world);
            compile_with_world(&source, &world.core).map_err(|e| e.to_string())?;
            eprintln!("{}: ok", options.file);
            Ok(())
        }
        "sample" => {
            let world = build_world(&options.world);
            let scenario = compile_with_world(&source, &world.core).map_err(|e| e.to_string())?;
            let mut sampler = Sampler::new(&scenario).with_seed(options.seed);
            if let Some(dir) = &options.out {
                std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
            }
            let scenes = sampler
                .sample_batch(options.n, options.jobs)
                .map_err(|e| e.to_string())?;
            for (i, scene) in scenes.iter().enumerate() {
                let text = render(scene, &options.format);
                match &options.out {
                    Some(dir) => {
                        let path = std::path::Path::new(dir)
                            .join(format!("scene_{i:04}.{}", file_extension(&options.format)));
                        std::fs::write(&path, &text)
                            .map_err(|e| format!("{}: {e}", path.display()))?;
                        eprintln!("wrote {}", path.display());
                        if options.ppm {
                            let ppm_path =
                                std::path::Path::new(dir).join(format!("scene_{i:04}.ppm"));
                            write_ppm(scene, &world.background, &ppm_path)?;
                            eprintln!("wrote {}", ppm_path.display());
                        }
                    }
                    None => {
                        if options.n > 1 && options.format == "summary" {
                            println!("--- scene {i} ---");
                        }
                        print!("{text}");
                    }
                }
            }
            if options.stats {
                let stats = sampler.stats();
                eprintln!(
                    "{} scenes, {} iterations ({:.1}/scene); rejections: \
                     {} requirement, {} collision, {} containment, {} visibility",
                    stats.scenes,
                    stats.iterations,
                    stats.iterations_per_scene(),
                    stats.requirement_rejections,
                    stats.collision_rejections,
                    stats.containment_rejections,
                    stats.visibility_rejections,
                );
            }
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn main() -> ExitCode {
    match parse_args(std::env::args()) {
        Ok(options) => match run(&options) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::FAILURE
            }
        },
        Err(message) => {
            if !message.is_empty() {
                eprintln!("error: {message}\n");
            }
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
