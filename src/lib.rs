//! # Scenic (Rust reproduction)
//!
//! A from-scratch Rust implementation of **Scenic: A Language for
//! Scenario Specification and Scene Generation** (Fremont et al.,
//! PLDI 2019): a probabilistic programming language whose programs
//! describe *distributions over scenes* — configurations of physical
//! objects and agents.
//!
//! This façade crate re-exports the workspace:
//!
//! - [`geom`]: the 2D geometry substrate (vectors, headings, polygons,
//!   regions, vector fields, visibility);
//! - [`lang`]: lexer, parser, and AST for the Scenic language;
//! - [`core`]: the interpreter (specifier resolution, operator
//!   semantics, requirements, mutation) and the domain-specific
//!   samplers with §5.2 pruning;
//! - [`gta`]: the synthetic driving world and `gtaLib` standard library
//!   used by the paper's autonomous-car case study;
//! - [`sim`]: the camera/rendering substrate producing labeled
//!   bounding boxes, plus detection metrics (IoU, precision, recall,
//!   average precision);
//! - [`detect`]: the synthetic car detector standing in for squeezeDet,
//!   with the training/evaluation harness behind §6's experiments;
//! - [`mars`]: the Mars-rover robotics workspace of Fig. 4/§A.12;
//! - [`serve`]: `scenicd`, a long-running scenario service sharing one
//!   worker pool and compiled-scenario cache across clients over a
//!   length-prefixed JSON protocol, with its client library;
//! - [`mod@bench`]: the experiment layer behind `scenic exp` — typed
//!   drivers regenerating the paper's §6/Appendix D tables and
//!   figures, with shape-check verdicts and the `scenic-exp/v1`
//!   artifact writers.
//!
//! # Quickstart
//!
//! ```
//! use scenic::prelude::*;
//!
//! let source = r#"
//! ego = Car
//! Car offset by (-10, 10) @ (20, 40)
//! "#;
//! let world = scenic::gta::World::generate(scenic::gta::MapConfig::default());
//! let scenario = compile_with_world(source, world.core())?;
//! let mut sampler = Sampler::new(&scenario);
//! let scene = sampler.sample_seeded(42)?;
//! assert_eq!(scene.objects.len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Batches parallelize across threads without changing the output
//! (every scene's RNG stream derives from the root seed and its index):
//!
//! ```
//! use scenic::prelude::*;
//!
//! let scenario = compile("ego = Object at 0 @ 0\nObject at 0 @ (5, 9)\n")?;
//! let scenes = Sampler::new(&scenario).with_seed(1).sample_batch(8, 4)?;
//! assert_eq!(scenes.len(), 8);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use scenic_bench as bench;
pub use scenic_core as core;
pub use scenic_detect as detect;
pub use scenic_geom as geom;
pub use scenic_gta as gta;
pub use scenic_lang as lang;
pub use scenic_mars as mars;
pub use scenic_serve as serve;
pub use scenic_sim as sim;

/// Convenient glob-import surface for examples and downstream users.
pub mod prelude {
    pub use scenic_core::cache::{source_hash, ScenarioCache};
    pub use scenic_core::compile::Engine;
    pub use scenic_core::pool::WorkerPool;
    pub use scenic_core::sampler::{derive_scene_seed, BatchReport, Sampler, SamplerConfig};
    pub use scenic_core::scene::{Scene, SceneObject};
    pub use scenic_core::store::{ArtifactStore, LedgerKey, LedgerOutcome, StoreError};
    pub use scenic_core::{batch_digest, compile, compile_with_world, scene_digest, ScenicError};
    pub use scenic_geom::{Heading, Polygon, Region, Vec2, VectorField};
    pub use scenic_serve::{Client, SampleRequest, Server};
}
