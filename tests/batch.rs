//! Property-based tests (proptest) of the batch-sampling seed
//! derivation and its equivalence with per-seed draws.

use proptest::prelude::*;
use scenic::prelude::*;
use std::collections::HashSet;

/// The deterministic heart of the contract: over a full 10k-index
/// window, no two scene indices may ever share a child stream (the
/// SplitMix64 split is injective per root, so a single collision means
/// the derivation broke).
#[test]
fn derived_seeds_never_collide_over_10k_indices() {
    for root in [0u64, 7, 0xDEAD_BEEF, u64::MAX] {
        let mut seen = HashSet::with_capacity(10_000);
        for index in 0..10_000u64 {
            let child = derive_scene_seed(root, index);
            assert!(
                seen.insert(child),
                "seed collision at root {root}, index {index}"
            );
        }
    }
}

proptest! {
    #[test]
    fn derived_seeds_distinct_for_random_index_pairs(
        root in proptest::num::u64::ANY,
        i in 0u64..10_000,
        j in 0u64..10_000,
    ) {
        if i != j {
            prop_assert_ne!(derive_scene_seed(root, i), derive_scene_seed(root, j));
        }
    }

    #[test]
    fn derived_seeds_differ_across_roots(
        a in proptest::num::u64::ANY,
        b in proptest::num::u64::ANY,
        index in 0u64..10_000,
    ) {
        // The derivation is also injective in the root for a fixed
        // index, so distinct samplers never alias streams.
        if a != b {
            prop_assert_ne!(derive_scene_seed(a, index), derive_scene_seed(b, index));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batch_of_one_job_equals_seeded_draws(root in 0u64..1000, n in 1usize..4) {
        // sample_batch(n, 1) ≡ n independent sample_seeded calls on the
        // derived child seeds.
        let scenario = compile(
            "ego = Object at 0 @ 0\nObject at (3, 12) @ (3, 12), facing (0, 360) deg\n",
        )
        .unwrap();
        let batch = Sampler::new(&scenario)
            .with_seed(root)
            .sample_batch(n, 1)
            .unwrap();
        prop_assert_eq!(batch.len(), n);
        for (i, scene) in batch.iter().enumerate() {
            let seed = derive_scene_seed(root, i as u64);
            let expected = Sampler::new(&scenario).sample_seeded(seed).unwrap();
            prop_assert_eq!(scene.to_json(), expected.to_json());
        }
    }

    #[test]
    fn batch_is_invariant_in_worker_count(root in 0u64..1000, jobs in 2usize..6) {
        let scenario = compile(
            "ego = Object at 0 @ 0\nObject at (3, 12) @ (3, 12), facing (0, 360) deg\n",
        )
        .unwrap();
        let serial = Sampler::new(&scenario)
            .with_seed(root)
            .sample_batch(4, 1)
            .unwrap();
        let parallel = Sampler::new(&scenario)
            .with_seed(root)
            .sample_batch(4, jobs)
            .unwrap();
        let a: Vec<String> = serial.iter().map(Scene::to_json).collect();
        let b: Vec<String> = parallel.iter().map(Scene::to_json).collect();
        prop_assert_eq!(a, b);
    }
}
