//! Integration tests of the compiled-scenario cache and the persistent
//! sampler worker pool: invalidation semantics, cross-call reuse, and
//! pooled-vs-scoped output equivalence.

use scenic::gta::{scenarios, MapConfig, World};
use scenic::prelude::*;
use std::sync::Arc;

/// FNV-1a (64-bit) over a batch's concatenated canonical JSON — the
/// same digest family `tests/determinism.rs` pins.
fn batch_digest(scenes: &[Scene]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for scene in scenes {
        for byte in scene.to_json().bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    hash
}

#[test]
fn cache_shares_one_compilation_per_content() {
    let cache = ScenarioCache::new();
    let world = World::generate(MapConfig::default());
    let a = cache
        .get_or_compile("gta", scenarios::SIMPLEST, world.core())
        .unwrap();
    let b = cache
        .get_or_compile("gta", scenarios::SIMPLEST, world.core())
        .unwrap();
    assert!(Arc::ptr_eq(&a, &b), "same content compiled twice");
    assert_eq!((cache.misses(), cache.hits()), (1, 1));
}

#[test]
fn cache_recompiles_edited_source() {
    let cache = ScenarioCache::new();
    let world = World::generate(MapConfig::default());
    let original = scenarios::SIMPLEST;
    let edited = format!("{original}Car\n");
    let a = cache.get_or_compile("gta", original, world.core()).unwrap();
    let b = cache.get_or_compile("gta", &edited, world.core()).unwrap();
    assert!(!Arc::ptr_eq(&a, &b), "edited source must recompile");
    assert_ne!(source_hash(original), source_hash(&edited));
    assert_eq!((cache.misses(), cache.hits()), (2, 0));
}

#[test]
fn cached_scenario_samples_identically_to_fresh_compile() {
    let cache = ScenarioCache::new();
    let world = World::generate(MapConfig::default());
    let cached = cache
        .get_or_compile("gta", scenarios::SIMPLEST, world.core())
        .unwrap();
    let fresh = compile_with_world(scenarios::SIMPLEST, world.core()).unwrap();
    let a = Sampler::new(&cached)
        .with_seed(11)
        .sample_batch(3, 2)
        .unwrap();
    let b = Sampler::new(&fresh)
        .with_seed(11)
        .sample_batch(3, 2)
        .unwrap();
    assert_eq!(batch_digest(&a), batch_digest(&b));
}

#[test]
fn pool_reuse_matches_fresh_scoped_runs_digest_for_digest() {
    let world = World::generate(MapConfig::default());
    let scenario = compile_with_world(scenarios::SIMPLEST, world.core()).unwrap();

    // Two batches back-to-back on the persistent pool (the second call
    // reuses the threads the first one spawned)...
    let pooled_first = Sampler::new(&scenario)
        .with_seed(3)
        .sample_batch(4, 4)
        .unwrap();
    let pooled_second = Sampler::new(&scenario)
        .with_seed(9)
        .sample_batch(4, 4)
        .unwrap();

    // ...must equal two fresh scoped-spawn runs, digest for digest.
    let scoped_first = Sampler::new(&scenario)
        .with_seed(3)
        .sample_batch_scoped(4, 4)
        .unwrap();
    let scoped_second = Sampler::new(&scenario)
        .with_seed(9)
        .sample_batch_scoped(4, 4)
        .unwrap();
    assert_eq!(batch_digest(&pooled_first), batch_digest(&scoped_first));
    assert_eq!(batch_digest(&pooled_second), batch_digest(&scoped_second));
    assert_ne!(batch_digest(&pooled_first), batch_digest(&pooled_second));
}

#[test]
fn private_pool_reports_match_scoped_reports() {
    let scenario = compile("ego = Object at 0 @ 0\nObject at 0 @ (4, 9)\n").unwrap();
    let pool = WorkerPool::new(1);
    let mut pooled = Sampler::new(&scenario).with_seed(5);
    let mut scoped = Sampler::new(&scenario).with_seed(5);
    for _ in 0..2 {
        let a = pooled.sample_batch_report_with(&pool, 5, 3).unwrap();
        let b = scoped.sample_batch_report_scoped(5, 3).unwrap();
        assert_eq!(batch_digest(&a.scenes), batch_digest(&b.scenes));
        assert_eq!(a.per_scene, b.per_scene);
    }
    assert_eq!(pooled.stats(), scoped.stats());
    // jobs=3 runs one worker inline and two on the pool: the 1-thread
    // pool must have grown to 2 for the first batch, then stayed put.
    assert_eq!(pool.workers(), 2, "pool did not grow for the batches");
}

#[test]
fn concurrent_clients_share_exactly_one_compilation() {
    // The daemon shares one ScenarioCache across all connection
    // handlers, so this is the serving layer's hot path: many clients
    // requesting the same scenario at once must end up with the very
    // same compiled Arc, after exactly one compilation entering the
    // cache. A barrier releases all threads into get_or_compile at the
    // same instant to make the race real.
    const THREADS: usize = 8;
    let cache = Arc::new(ScenarioCache::new());
    let world = Arc::new(World::generate(MapConfig::default()).core().clone());
    let barrier = Arc::new(std::sync::Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let cache = Arc::clone(&cache);
            let world = Arc::clone(&world);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut entries = Vec::new();
                for _ in 0..16 {
                    entries.push(
                        cache
                            .get_or_compile("gta", scenarios::SIMPLEST, &world)
                            .expect("compiles"),
                    );
                }
                entries
            })
        })
        .collect();
    let all: Vec<_> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("hammer thread"))
        .collect();
    let first = &all[0];
    for (i, entry) in all.iter().enumerate() {
        assert!(
            Arc::ptr_eq(first, entry),
            "entry {i} is a different compilation: racing compiles must \
             converge on one shared Arc"
        );
    }
    assert_eq!(
        cache.misses(),
        1,
        "racing compiles of one key must count exactly one miss \
         (= one entry ever cached)"
    );
    assert_eq!(cache.len(), 1);
    // Each call is a hit, the one counted miss, or a racing compile
    // that lost the insert (counts neither; at most one per thread,
    // since after the first insert every lookup hits).
    assert!(
        cache.hits() >= THREADS * 16 - THREADS && cache.hits() < THREADS * 16,
        "hit count {} out of range for {} calls",
        cache.hits(),
        THREADS * 16
    );
}

#[test]
fn pooled_batch_error_matches_scoped_error() {
    // Unsatisfiable: two objects pinned to the same spot.
    let scenario = compile("ego = Object at 0 @ 0\nObject at 0 @ 0.5\n").unwrap();
    let config = SamplerConfig { max_iterations: 5 };
    let mut pooled = Sampler::new(&scenario).with_seed(1).with_config(config);
    let mut scoped = Sampler::new(&scenario).with_seed(1).with_config(config);
    let a = pooled.sample_batch(4, 4).unwrap_err();
    let b = scoped.sample_batch_scoped(4, 4).unwrap_err();
    assert_eq!(a, b, "pooled and scoped dispatch disagree on the error");
    assert_eq!(
        pooled.stats(),
        scoped.stats(),
        "cancellation statistics drifted between dispatch strategies"
    );
}

#[test]
fn concurrent_clients_share_the_disk_tier_too() {
    // Same hammer, with a store underneath: the racing threads must
    // still converge on one compile, one entry file, and a warm cache
    // over the same directory must then serve everything from disk.
    const THREADS: usize = 8;
    let dir = std::env::temp_dir().join(format!("scenic-cache-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let world = Arc::new(World::generate(MapConfig::default()).core().clone());
    let digest = {
        let store = Arc::new(ArtifactStore::open(&dir).unwrap());
        let cache = Arc::new(ScenarioCache::with_store(store));
        let barrier = Arc::new(std::sync::Barrier::new(THREADS));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let world = Arc::clone(&world);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    cache
                        .get_or_compile("gta", scenarios::SIMPLEST, &world)
                        .expect("compiles")
                })
            })
            .collect();
        let all: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for entry in &all {
            assert!(Arc::ptr_eq(&all[0], entry));
        }
        assert_eq!(cache.misses(), 1, "one compile despite the store race");
        assert_eq!(cache.store().unwrap().entry_count(), 1);
        let scenes = Sampler::new(&all[0])
            .with_seed(5)
            .sample_batch(2, 2)
            .unwrap();
        batch_digest(&scenes)
    };
    // Warm process (simulated by a fresh cache + store over the same
    // directory): disk hit, zero compiles, identical scenes.
    let store = Arc::new(ArtifactStore::open(&dir).unwrap());
    let cache = ScenarioCache::with_store(Arc::clone(&store));
    let scenario = cache
        .get_or_compile("gta", scenarios::SIMPLEST, &world)
        .unwrap();
    assert_eq!(cache.misses(), 0, "warm lookup must not compile");
    assert_eq!(store.disk_hits(), 1);
    let scenes = Sampler::new(&scenario)
        .with_seed(5)
        .sample_batch(2, 2)
        .unwrap();
    assert_eq!(
        batch_digest(&scenes),
        digest,
        "disk tier changed the scenes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
