//! End-to-end tests of the `scenic` command-line front end.

use std::path::PathBuf;
use std::process::{Command, Output};

fn scenic_bin() -> &'static str {
    env!("CARGO_BIN_EXE_scenic")
}

fn write_scenario(name: &str, source: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("scenic-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, source).unwrap();
    path
}

fn run(args: &[&str]) -> Output {
    // Store off by default: these tests pin compile counts and stderr
    // byte-for-byte, which a warm user-level artifact store would
    // change. Store-specific tests opt back in with explicit --store.
    Command::new(scenic_bin())
        .env("SCENIC_STORE", "off")
        .args(args)
        .output()
        .expect("failed to launch scenic binary")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

#[test]
fn no_arguments_prints_usage() {
    let out = run(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage:"), "{}", stderr(&out));
}

#[test]
fn help_prints_usage() {
    let out = run(&["--help"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("scenic sample"));
}

#[test]
fn check_accepts_a_valid_scenario() {
    let path = write_scenario("ok.scenic", "ego = Car\nCar\n");
    let out = run(&["check", path.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stderr(&out).contains("ok"));
}

#[test]
fn check_reports_parse_errors_with_position() {
    let path = write_scenario("bad.scenic", "ego = Car\nCar offset\n");
    let out = run(&["check", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("error:"), "{}", stderr(&out));
    assert!(stderr(&out).contains('2'), "line missing: {}", stderr(&out));
}

#[test]
fn check_with_bare_world_rejects_gta_classes() {
    let path = write_scenario("needs_gta.scenic", "ego = Car\n");
    let out = run(&["check", path.to_str().unwrap(), "--world", "bare"]);
    // `Car` only exists in the gta library; the bare world compiles
    // fine (binding happens at run time), so `check` still passes —
    // but sampling must fail cleanly.
    let sample = run(&["sample", path.to_str().unwrap(), "--world", "bare"]);
    assert!(out.status.success());
    assert_eq!(sample.status.code(), Some(1));
    assert!(stderr(&sample).contains("Car"), "{}", stderr(&sample));
}

#[test]
fn sample_summary_lists_every_object() {
    let path = write_scenario("two.scenic", "ego = Car\nCar\n");
    let out = run(&["sample", path.to_str().unwrap(), "--seed", "3"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert_eq!(text.matches("Car").count(), 2, "{text}");
    assert!(text.contains("(ego)"), "{text}");
}

#[test]
fn sample_is_deterministic_per_seed() {
    let path = write_scenario("det.scenic", "ego = Car\nCar\n");
    let a = run(&["sample", path.to_str().unwrap(), "--seed", "9"]);
    let b = run(&["sample", path.to_str().unwrap(), "--seed", "9"]);
    let c = run(&["sample", path.to_str().unwrap(), "--seed", "10"]);
    assert_eq!(stdout(&a), stdout(&b));
    assert_ne!(stdout(&a), stdout(&c));
}

#[test]
fn sample_output_is_invariant_in_jobs() {
    let path = write_scenario("jobs.scenic", "ego = Car\nCar\n");
    let mut outputs = Vec::new();
    for jobs in ["1", "2", "8"] {
        let out = run(&[
            "sample",
            path.to_str().unwrap(),
            "-n",
            "4",
            "--seed",
            "6",
            "--jobs",
            jobs,
        ]);
        assert!(out.status.success(), "jobs={jobs}: {}", stderr(&out));
        outputs.push(stdout(&out));
    }
    assert_eq!(outputs[0], outputs[1], "--jobs 2 changed the output");
    assert_eq!(outputs[0], outputs[2], "--jobs 8 changed the output");
}

#[test]
fn zero_jobs_is_rejected() {
    let path = write_scenario("jobs0.scenic", "ego = Car\n");
    let out = run(&["sample", path.to_str().unwrap(), "--jobs", "0"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--jobs"), "{}", stderr(&out));
}

/// Path of a bundled scenario under the repo's `scenarios/` directory.
fn bundled(name: &str) -> PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("scenarios")
        .join(name)
}

#[test]
fn bundled_mars_formation_samples_in_parallel() {
    let out = run(&[
        "sample",
        bundled("mars_formation.scenic").to_str().unwrap(),
        "--world",
        "mars",
        "-n",
        "2",
        "--jobs",
        "4",
        "--seed",
        "2",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    // Lead rover (ego) plus the two wing rovers built by the `def`
    // helper.
    assert_eq!(text.matches("Rover").count(), 6, "{text}");
    assert!(text.contains("Goal"), "{text}");
}

#[test]
fn bundled_gta_intersection_samples_in_parallel() {
    let out = run(&[
        "sample",
        bundled("gta_intersection.scenic").to_str().unwrap(),
        "-n",
        "2",
        "--jobs",
        "4",
        "--seed",
        "5",
        "--stats",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert_eq!(text.matches("Car").count(), 4, "{text}");
    assert!(stderr(&out).contains("2 scenes"), "{}", stderr(&out));
}

#[test]
fn sample_json_round_trips() {
    let path = write_scenario("json.scenic", "ego = Car\nCar\n");
    let out = run(&[
        "sample",
        path.to_str().unwrap(),
        "--format",
        "json",
        "--seed",
        "1",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let scene = scenic::prelude::Scene::from_json(&stdout(&out)).expect("valid scene JSON");
    assert_eq!(scene.objects.len(), 2);
}

#[test]
fn sample_writes_files_with_out_dir() {
    let path = write_scenario("outdir.scenic", "ego = Car\nCar\n");
    let dir = std::env::temp_dir().join("scenic-cli-tests/out");
    let _ = std::fs::remove_dir_all(&dir);
    let out = run(&[
        "sample",
        path.to_str().unwrap(),
        "-n",
        "3",
        "--format",
        "gta",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let files: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
    assert_eq!(files.len(), 3);
    let first = std::fs::read_to_string(dir.join("scene_0000.gta.jsonl")).unwrap();
    assert!(first.contains("set_camera"), "{first}");
}

#[test]
fn sample_ppm_writes_rasters() {
    let path = write_scenario("ppm.scenic", "ego = Car\nCar\n");
    let dir = std::env::temp_dir().join("scenic-cli-tests/ppm");
    let _ = std::fs::remove_dir_all(&dir);
    let out = run(&[
        "sample",
        path.to_str().unwrap(),
        "-n",
        "2",
        "--out",
        dir.to_str().unwrap(),
        "--ppm",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let ppm = std::fs::read(dir.join("scene_0000.ppm")).unwrap();
    assert!(ppm.starts_with(b"P6"), "not a binary PPM");
    assert!(dir.join("scene_0001.ppm").exists());
}

#[test]
fn ppm_without_out_dir_is_rejected() {
    let path = write_scenario("ppm2.scenic", "ego = Car\n");
    let out = run(&["sample", path.to_str().unwrap(), "--ppm"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--ppm needs --out"));
}

#[test]
fn sample_stats_go_to_stderr() {
    let path = write_scenario("stats.scenic", "ego = Car\nCar\n");
    let out = run(&["sample", path.to_str().unwrap(), "-n", "2", "--stats"]);
    assert!(out.status.success());
    assert!(stderr(&out).contains("2 scenes"), "{}", stderr(&out));
}

#[test]
fn sample_mars_world() {
    let path = write_scenario(
        "rover.scenic",
        "ego = Rover at 0 @ -2\nGoal at (-2, 2) @ (2, 2.5)\n",
    );
    let out = run(&["sample", path.to_str().unwrap(), "--world", "mars"]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("Rover"), "{}", stdout(&out));
}

#[test]
fn print_emits_reparsable_source() {
    let path = write_scenario(
        "pretty.scenic",
        "ego = Car\nCar offset by (-10, 10) @ (20, 40), facing 5 deg\n",
    );
    let out = run(&["print", path.to_str().unwrap()]);
    assert!(out.status.success());
    scenic::lang::parse(&stdout(&out)).expect("printed source parses");
}

#[test]
fn unknown_world_is_rejected() {
    let path = write_scenario("w.scenic", "ego = Car\n");
    let out = run(&["sample", path.to_str().unwrap(), "--world", "moon"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown world"));
}

#[test]
fn unknown_format_is_rejected() {
    let path = write_scenario("f.scenic", "ego = Car\n");
    let out = run(&["sample", path.to_str().unwrap(), "--format", "png"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown format"));
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = run(&["check", "/nonexistent/path.scenic"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("error:"));
}

#[test]
fn repeat_compiles_once_and_reroots_the_seed() {
    let path = write_scenario("repeat.scenic", "ego = Car\nCar\n");
    let repeated = run(&[
        "sample",
        path.to_str().unwrap(),
        "--seed",
        "4",
        "--repeat",
        "2",
        "--stats",
    ]);
    assert!(repeated.status.success(), "{}", stderr(&repeated));
    // One compile, one cache hit: the scenario compiled once for both
    // rounds.
    assert!(
        stderr(&repeated).contains("compiled 1 scenario(s), 1 cache hit(s)"),
        "{}",
        stderr(&repeated)
    );
    // Round r samples with seed S + r: the repeated run's scenes are
    // exactly the single-run outputs at seeds 4 and 5.
    let single_4 = run(&["sample", path.to_str().unwrap(), "--seed", "4"]);
    let single_5 = run(&["sample", path.to_str().unwrap(), "--seed", "5"]);
    let text = stdout(&repeated);
    assert!(text.contains(stdout(&single_4).trim()), "{text}");
    assert!(text.contains(stdout(&single_5).trim()), "{text}");
}

#[test]
fn identical_source_under_a_different_path_hits_the_cache() {
    let source = "ego = Car\nCar\n";
    let a = write_scenario("same_a.scenic", source);
    let b = write_scenario("same_b.scenic", source);
    let out = run(&[
        "sample",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--seed",
        "1",
        "--stats",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    // The cache keys on content, not path: the second file is a hit.
    assert!(
        stderr(&out).contains("compiled 1 scenario(s), 1 cache hit(s)"),
        "{}",
        stderr(&out)
    );
    // Same world, same seed, same content: both files produce the same
    // scene.
    let text = stdout(&out);
    assert!(text.contains("same_a"), "{text}");
    assert!(text.contains("same_b"), "{text}");
}

#[test]
fn multi_file_sample_compiles_distinct_sources_separately() {
    let a = write_scenario("multi_a.scenic", "ego = Car\nCar\n");
    let b = write_scenario("multi_b.scenic", "ego = Car\nCar\nCar\n");
    let out = run(&[
        "sample",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--seed",
        "2",
        "--stats",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(
        stderr(&out).contains("compiled 2 scenario(s), 0 cache hit(s)"),
        "{}",
        stderr(&out)
    );
    assert_eq!(stdout(&out).matches("Car").count(), 5, "{}", stdout(&out));
}

#[test]
fn repeat_with_out_dir_prefixes_round_numbers() {
    let path = write_scenario("repout.scenic", "ego = Car\nCar\n");
    let dir = std::env::temp_dir().join("scenic-cli-tests/repeat-out");
    let _ = std::fs::remove_dir_all(&dir);
    let out = run(&[
        "sample",
        path.to_str().unwrap(),
        "--repeat",
        "2",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(dir.join("r00_scene_0000.txt").exists());
    assert!(dir.join("r01_scene_0000.txt").exists());
}

#[test]
fn same_stem_in_different_directories_does_not_collide_in_out_dir() {
    let base = std::env::temp_dir().join("scenic-cli-tests");
    for sub in ["city", "rural"] {
        std::fs::create_dir_all(base.join(sub)).unwrap();
    }
    let a = base.join("city/crossing.scenic");
    let b = base.join("rural/crossing.scenic");
    std::fs::write(&a, "ego = Car\n").unwrap();
    std::fs::write(&b, "ego = Car\nCar\n").unwrap();
    let dir = base.join("stem-out");
    let _ = std::fs::remove_dir_all(&dir);
    let out = run(&[
        "sample",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    // Both scenarios' scenes survive under disambiguated stems.
    assert!(dir.join("crossing1_scene_0000.txt").exists());
    assert!(dir.join("crossing2_scene_0000.txt").exists());
}

#[test]
fn zero_repeat_is_rejected() {
    let path = write_scenario("rep0.scenic", "ego = Car\n");
    let out = run(&["sample", path.to_str().unwrap(), "--repeat", "0"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--repeat"), "{}", stderr(&out));
}

#[test]
fn check_accepts_multiple_files() {
    let a = write_scenario("chk_a.scenic", "ego = Car\n");
    let b = write_scenario("chk_b.scenic", "ego = Car\nCar\n");
    let out = run(&["check", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert_eq!(stderr(&out).matches(": ok").count(), 2, "{}", stderr(&out));
}

#[test]
fn prune_off_output_is_byte_identical_to_default() {
    // Guard-mode pruning (the default) must never change what gets
    // sampled — only how early doomed candidate runs are abandoned.
    let path = bundled("mars_bottleneck.scenic");
    let base = [
        "sample",
        path.to_str().unwrap(),
        "--world",
        "mars",
        "--seed",
        "4",
        "-n",
        "2",
        "--jobs",
        "2",
    ];
    let on = run(&base);
    let mut with_off = base.to_vec();
    with_off.push("--prune=off");
    let off = run(&with_off);
    assert!(on.status.success(), "{}", stderr(&on));
    assert!(off.status.success(), "{}", stderr(&off));
    assert_eq!(stdout(&on), stdout(&off));
}

#[test]
fn prune_stats_table_lists_guards_and_counters() {
    let path = bundled("mars_bottleneck.scenic");
    let out = run(&[
        "sample",
        path.to_str().unwrap(),
        "--world",
        "mars",
        "--seed",
        "4",
        "--prune",
        "--stats",
        "--jobs",
        "2",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("pruning: on (1 guard(s))"), "{err}");
    assert!(err.contains("mars.ground"), "{err}");
    assert!(err.contains("containment"), "{err}");
    assert!(err.contains("prune-guard rejections:"), "{err}");
    assert!(err.contains("unpruned-equivalent"), "{err}");
}

#[test]
fn prune_off_and_unguarded_worlds_report_so_in_stats() {
    let path = bundled("mars_bottleneck.scenic");
    let out = run(&[
        "sample",
        path.to_str().unwrap(),
        "--world",
        "mars",
        "--prune=off",
        "--stats",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stderr(&out).contains("pruning: off"), "{}", stderr(&out));
    // The bare world has no prunable native regions: pruning stays on
    // but reports that it has nothing to do.
    let bare = write_scenario("noprune.scenic", "ego = Object at 0 @ 0\n");
    let out = run(&[
        "sample",
        bare.to_str().unwrap(),
        "--world",
        "bare",
        "--stats",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(
        stderr(&out).contains("no applicable guards"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn bogus_prune_value_is_rejected() {
    let path = write_scenario("prune_bogus.scenic", "ego = Car\n");
    let out = run(&["sample", path.to_str().unwrap(), "--prune=sometimes"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--prune"), "{}", stderr(&out));
}

/// The stable part of a prune-report output: everything except the
/// wall-clock field (the only non-deterministic column).
fn strip_wall_clock(report: &str) -> String {
    report
        .lines()
        .map(|line| match line.find(" ms/scene") {
            Some(_) => {
                let cut = line.rfind(';').unwrap_or(line.len());
                &line[..cut]
            }
            None => line,
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn prune_report_regenerates_appendix_d_from_one_run() {
    let path = bundled("gta_oncoming.scenic");
    let args = [
        "prune-report",
        path.to_str().unwrap(),
        "--heading",
        "150,210",
        "--max-distance",
        "50",
        "-n",
        "5",
        "--seed",
        "7",
        "--jobs",
        "2",
    ];
    let out = run(&args);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    // Table shape: the per-region area rows and the two iteration
    // columns derived from the one guarded batch.
    assert!(text.contains("gtaLib.road"), "{text}");
    assert!(text.contains("orientation"), "{text}");
    assert!(text.contains("% kept"), "{text}");
    assert!(text.contains("iters/scene:"), "{text}");
    assert!(text.contains("unpruned"), "{text}");
    assert!(text.contains("guard-pruned"), "{text}");
    // The §5.2 promise on this bottleneck scenario: strictly fewer full
    // interpreter runs per scene with pruning on.
    let line = text
        .lines()
        .find(|l| l.contains("iters/scene:"))
        .expect("no iters/scene line");
    let mut nums = line
        .split(&[' ', ','][..])
        .filter_map(|w| w.parse::<f64>().ok());
    let unpruned = nums.next().expect("unpruned column");
    let pruned = nums.next().expect("pruned column");
    assert!(
        pruned < unpruned,
        "pruning did not reduce iterations/scene: {line}"
    );
    // Deterministic: a second run differs only in wall-clock.
    let again = run(&args);
    assert!(again.status.success());
    assert_eq!(strip_wall_clock(&text), strip_wall_clock(&stdout(&again)));
}

#[test]
fn prune_report_without_applicable_regions_says_so() {
    let path = write_scenario("prune_bare.scenic", "ego = Object at 0 @ 0\n");
    let out = run(&["prune-report", path.to_str().unwrap(), "--world", "bare"]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(
        stdout(&out).contains("no applicable pruned regions"),
        "{}",
        stdout(&out)
    );
}

#[test]
fn bench_pool_reports_both_strategies() {
    let path = write_scenario("bench.scenic", "ego = Object at 0 @ 0\n");
    let out = run(&[
        "bench-pool",
        path.to_str().unwrap(),
        "--world",
        "bare",
        "--jobs",
        "2",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("jobs=2"), "{text}");
    for batch in ["batch= 1", "batch= 8", "batch=64"] {
        assert!(text.contains(batch), "missing {batch}: {text}");
    }
    assert!(text.contains("scoped") && text.contains("pool"), "{text}");
}

#[test]
fn engine_ast_output_is_byte_identical_to_compiled_default() {
    // The compiled engine (the default) must sample the exact scenes
    // the reference interpreter samples — `--engine` only changes how
    // fast candidates evaluate, never what comes out.
    let path = bundled("gta_oncoming.scenic");
    let base = [
        "sample",
        path.to_str().unwrap(),
        "--format",
        "json",
        "--seed",
        "6",
        "-n",
        "2",
        "--jobs",
        "2",
    ];
    let compiled = run(&base);
    let mut with_ast = base.to_vec();
    with_ast.extend(["--engine", "ast"]);
    let ast = run(&with_ast);
    assert!(compiled.status.success(), "{}", stderr(&compiled));
    assert!(ast.status.success(), "{}", stderr(&ast));
    assert_eq!(stdout(&compiled), stdout(&ast));
}

#[test]
fn engine_shows_in_stats_and_bogus_engine_is_rejected() {
    let path = write_scenario("eng.scenic", "ego = Object at 0 @ 0\n");
    let out = run(&[
        "sample",
        path.to_str().unwrap(),
        "--world",
        "bare",
        "--stats",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(
        stderr(&out).contains("engine: compiled"),
        "{}",
        stderr(&out)
    );
    let bad = run(&[
        "sample",
        path.to_str().unwrap(),
        "--world",
        "bare",
        "--engine",
        "jit",
    ]);
    assert_eq!(bad.status.code(), Some(2));
    assert!(stderr(&bad).contains("unknown engine"), "{}", stderr(&bad));
}

// ---------------------------------------------------------------------
// scenicd: the serve/client commands end to end, over a real subprocess
// boundary (the in-process protocol tests live in tests/daemon.rs).
// ---------------------------------------------------------------------

/// Starts `scenic serve` on an ephemeral port and returns the child
/// plus the address parsed from its announcement line.
fn spawn_daemon() -> (std::process::Child, String) {
    use std::io::BufRead;
    let mut child = Command::new(scenic_bin())
        .env("SCENIC_STORE", "off")
        .args(["serve", "--port", "0"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("launch scenic serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    std::io::BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read announcement line");
    let addr = line
        .trim()
        .strip_prefix("scenicd listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
        .to_string();
    (child, addr)
}

#[test]
fn serve_and_client_round_trip_byte_identically_with_direct_sampling() {
    let (mut child, addr) = spawn_daemon();
    let path = bundled("two_cars.scenic");
    let base = [
        path.to_str().unwrap(),
        "--world",
        "gta",
        "-n",
        "3",
        "--seed",
        "7",
        "--jobs",
        "2",
        "--format",
        "json",
    ];
    let mut client_args = vec!["client", "sample", "--addr", &addr];
    client_args.extend(base);
    let via_daemon = run(&client_args);
    assert!(via_daemon.status.success(), "{}", stderr(&via_daemon));
    let mut direct_args = vec!["sample"];
    direct_args.extend(base);
    let direct = run(&direct_args);
    assert!(direct.status.success(), "{}", stderr(&direct));
    assert_eq!(
        stdout(&via_daemon),
        stdout(&direct),
        "daemon-served scenes must be byte-identical to `scenic sample`"
    );

    let health = run(&["client", "health", "--addr", &addr]);
    assert!(health.status.success(), "{}", stderr(&health));
    assert!(stdout(&health).starts_with("ok"), "{}", stdout(&health));

    let stats = run(&["client", "stats", "--addr", &addr]);
    assert!(stats.status.success(), "{}", stderr(&stats));
    assert!(
        stdout(&stats).contains("two_cars: 3 scene(s)"),
        "{}",
        stdout(&stats)
    );

    let shutdown = run(&["client", "shutdown", "--addr", &addr]);
    assert!(shutdown.status.success(), "{}", stderr(&shutdown));
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "daemon exit status {status:?}");
}

#[test]
fn client_without_daemon_fails_cleanly() {
    // Port 9 (discard) is never a scenicd; connect_retry gives up fast
    // on a refused connection.
    let out = run(&["client", "health", "--addr", "127.0.0.1:9"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("error:"), "{}", stderr(&out));
}

#[test]
fn client_needs_an_action() {
    let out = run(&["client"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("client needs an action"),
        "{}",
        stderr(&out)
    );
}

// ---------------------------------------------------------------------
// scenic exp: the experiment harness front end. Golden-output tests at
// a tiny scale — the artifact must be byte-identical across runs, carry
// the scenic-exp/v1 schema with complete shape-check records, and the
// usual usage errors must exit 2 before any experiment runs.
// ---------------------------------------------------------------------

#[test]
fn exp_json_artifact_is_byte_identical_and_schema_complete() {
    let dir = std::env::temp_dir().join("scenic-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let a = dir.join("exp_golden_a.json");
    let b = dir.join("exp_golden_b.json");
    let run_once = |path: &std::path::Path| {
        let out = run(&[
            "exp",
            "table6",
            "--scale",
            "0.02",
            "--json",
            path.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "{}", stderr(&out));
        assert!(stdout(&out).contains("shape check"), "{}", stdout(&out));
        std::fs::read(path).unwrap()
    };
    let first = run_once(&a);
    let second = run_once(&b);
    assert_eq!(first, second, "exp JSON artifact is not reproducible");

    let value: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&first).unwrap()).unwrap();
    let top = value.as_object().expect("artifact is an object");
    assert_eq!(
        top.get("schema").and_then(serde_json::Value::as_str),
        Some("scenic-exp/v1")
    );
    assert!(top.get("all_hold").is_some(), "all_hold missing");
    let experiments = top
        .get("experiments")
        .and_then(serde_json::Value::as_array)
        .expect("experiments array");
    assert_eq!(experiments.len(), 1);
    let exp = experiments[0].as_object().unwrap();
    assert_eq!(
        exp.get("id").and_then(serde_json::Value::as_str),
        Some("table6")
    );
    let checks = exp
        .get("checks")
        .and_then(serde_json::Value::as_array)
        .expect("checks array");
    assert!(!checks.is_empty(), "table6 must report shape checks");
    for check in checks {
        let check = check.as_object().expect("check is an object");
        for field in ["name", "holds", "detail"] {
            assert!(
                check.get(field).is_some(),
                "shape check missing field {field}"
            );
        }
    }
}

#[test]
fn exp_unknown_experiment_is_rejected_before_running() {
    let out = run(&["exp", "table99"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("unknown experiment"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn exp_zero_scale_is_rejected() {
    let out = run(&["exp", "table6", "--scale", "0"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--scale"), "{}", stderr(&out));
}

#[test]
fn exp_markdown_artifact_lists_tables_and_verdicts() {
    let dir = std::env::temp_dir().join("scenic-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let md_path = dir.join("exp_golden.md");
    let out = run(&[
        "exp",
        "fig36",
        "--scale",
        "0.02",
        "--md",
        md_path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let md = std::fs::read_to_string(&md_path).unwrap();
    assert!(md.contains("# Scenic experiment reproduction"), "{md}");
    assert!(
        md.contains("**HOLDS**") || md.contains("**VIOLATED**"),
        "{md}"
    );
    assert!(md.contains("| source |"), "{md}");
}
