//! User-defined specifiers (`specifier … specifies …` / `using name(…)`),
//! the language extension named in §8 of the paper ("allowing
//! user-defined specifiers").
//!
//! A user-defined specifier participates in Algorithm 1 exactly like a
//! built-in one: its `specifies`/`optionally` lists say which properties
//! it produces, its `requires` list gives its dependencies (available on
//! `self` when the body runs), and its body returns a dict of property
//! values.

use scenic::core::ScenicError;
use scenic::prelude::*;

fn run(source: &str, seed: u64) -> Result<Scene, ScenicError> {
    compile(source)?.generate_seeded(seed)
}

fn pos(scene: &Scene, idx: usize) -> [f64; 2] {
    scene.objects[idx].position
}

// ---------------------------------------------------------------------
// Basic definition and application
// ---------------------------------------------------------------------

#[test]
fn simple_position_specifier() {
    let scene = run(
        "specifier atOrigin() specifies position:\n\
         \x20   return {'position': 0 @ 0}\n\
         ego = Object at 5 @ 5\n\
         Object using atOrigin()\n",
        0,
    )
    .unwrap();
    assert_eq!(pos(&scene, 1), [0.0, 0.0]);
}

#[test]
fn specifier_with_arguments_and_defaults() {
    let scene = run(
        "specifier east(d, y=0) specifies position:\n\
         \x20   return {'position': d @ y}\n\
         ego = Object at 0 @ 0\n\
         Object using east(7)\n\
         Object using east(3, y=4)\n",
        0,
    )
    .unwrap();
    assert_eq!(pos(&scene, 1), [7.0, 0.0]);
    assert_eq!(pos(&scene, 2), [3.0, 4.0]);
}

#[test]
fn specifier_may_set_multiple_properties() {
    let scene = run(
        "specifier posed(x, h) specifies position, heading:\n\
         \x20   return {'position': x @ 0, 'heading': h}\n\
         ego = Object using posed(2, 90 deg)\n",
        0,
    )
    .unwrap();
    assert_eq!(pos(&scene, 0), [2.0, 0.0]);
    let h = scene.objects[0].heading.to_degrees();
    assert!((h - 90.0).abs() < 1e-9, "{h}");
}

#[test]
fn requires_makes_dependencies_visible_on_self() {
    // The body reads self.width, so `with width 4` must be evaluated
    // first even though it is written after the `using`.
    let scene = run(
        "specifier centeredRight(gap) specifies position requires width:\n\
         \x20   return {'position': (self.width / 2 + gap) @ 0}\n\
         ego = Object at 0 @ 0\n\
         Object using centeredRight(1), with width 4\n",
        0,
    )
    .unwrap();
    assert_eq!(pos(&scene, 1), [3.0, 0.0]);
}

#[test]
fn dependency_chain_through_class_defaults() {
    // The paper's motivating chain: position depends on width, whose
    // default depends on model.
    let scene = run(
        "class Sized:\n\
         \x20   model: 2\n\
         \x20   width: self.model * 3\n\
         specifier leftOfCurb(x) specifies position requires width:\n\
         \x20   return {'position': (x - self.width / 2) @ 0}\n\
         ego = Object at 50 @ 0\n\
         Sized using leftOfCurb(10)\n",
        0,
    )
    .unwrap();
    assert_eq!(pos(&scene, 1), [7.0, 0.0]);
}

// ---------------------------------------------------------------------
// Optional properties and overriding (Algorithm 1 step 2)
// ---------------------------------------------------------------------

#[test]
fn optional_property_applies_when_unopposed() {
    let scene = run(
        "specifier slot() specifies position optionally heading:\n\
         \x20   return {'position': 3 @ 3, 'heading': 90 deg}\n\
         ego = Object at 0 @ 0\n\
         Object using slot()\n",
        0,
    )
    .unwrap();
    let h = scene.objects[1].heading.to_degrees();
    assert!((h - 90.0).abs() < 1e-9, "{h}");
}

#[test]
fn optional_property_overridden_by_facing() {
    let scene = run(
        "specifier slot() specifies position optionally heading:\n\
         \x20   return {'position': 1 @ 1, 'heading': 90 deg}\n\
         ego = Object at 0 @ 0\n\
         Object using slot(), facing 45 deg\n",
        0,
    )
    .unwrap();
    let h = scene.objects[1].heading.to_degrees();
    assert!((h - 45.0).abs() < 1e-9, "{h}");
}

#[test]
fn omitted_optional_is_fine_when_overridden() {
    // The body may skip optional keys entirely if something else
    // specifies them.
    let scene = run(
        "specifier spot() specifies position optionally heading:\n\
         \x20   return {'position': 2 @ 2}\n\
         ego = Object at 0 @ 0\n\
         Object using spot(), facing 10 deg\n",
        0,
    )
    .unwrap();
    assert_eq!(pos(&scene, 1), [2.0, 2.0]);
}

#[test]
fn double_specification_with_builtin_errors() {
    let err = run(
        "specifier atOrigin() specifies position:\n\
         \x20   return {'position': 0 @ 0}\n\
         ego = Object at 0 @ 0\n\
         Object using atOrigin(), at 3 @ 3\n",
        0,
    )
    .unwrap_err();
    assert!(matches!(err, ScenicError::Specifier { .. }), "{err}");
}

#[test]
fn cyclic_dependency_with_builtin_detected() {
    // `using needsHeading(...)` needs heading; `facing field` needs
    // position — the paper's canonical cycle, through a user specifier.
    let err = run(
        "specifier needsHeading() specifies position requires heading:\n\
         \x20   return {'position': self.heading @ 0}\n\
         ego = Object at 0 @ 0\n\
         vf = workspace\n\
         Object using needsHeading(), facing toward 5 @ 5\n",
        0,
    )
    .unwrap_err();
    let ScenicError::Specifier { message, .. } = err else {
        panic!("wrong error: {err}");
    };
    assert!(message.contains("cyclic"), "{message}");
}

// ---------------------------------------------------------------------
// Randomness inside specifier bodies
// ---------------------------------------------------------------------

#[test]
fn specifier_bodies_may_sample() {
    let scene = run(
        "specifier nearby(r) specifies position:\n\
         \x20   return {'position': (0, r) @ (0, r)}\n\
         ego = Object at -20 @ -20\n\
         Object using nearby(5)\n",
        7,
    )
    .unwrap();
    let [x, y] = pos(&scene, 1);
    assert!((0.0..=5.0).contains(&x), "{x}");
    assert!((0.0..=5.0).contains(&y), "{y}");
}

#[test]
fn samples_differ_across_instances() {
    // Each application re-runs the body, so two objects get independent
    // draws (mirroring per-instance default evaluation, §4.1).
    let scene = run(
        "specifier spread() specifies position:\n\
         \x20   return {'position': (-100, 100) @ (-100, 100)}\n\
         ego = Object at 200 @ 200, with requireVisible False\n\
         a = Object using spread(), with requireVisible False\n\
         b = Object using spread(), with requireVisible False\n",
        3,
    )
    .unwrap();
    assert_ne!(pos(&scene, 1), pos(&scene, 2));
}

// ---------------------------------------------------------------------
// Error paths
// ---------------------------------------------------------------------

#[test]
fn using_undefined_name_errors() {
    let err = run("ego = Object using ghost()\n", 0).unwrap_err();
    assert!(matches!(err, ScenicError::Undefined { .. }), "{err}");
}

#[test]
fn using_a_function_errors() {
    let err = run(
        "def f():\n    return {'position': 0 @ 0}\n\
         ego = Object using f()\n",
        0,
    )
    .unwrap_err();
    assert!(matches!(err, ScenicError::Type { .. }), "{err}");
}

#[test]
fn returning_non_dict_errors() {
    let err = run(
        "specifier bad() specifies position:\n\
         \x20   return 0 @ 0\n\
         ego = Object using bad()\n",
        0,
    )
    .unwrap_err();
    let ScenicError::Type { message, .. } = err else {
        panic!("wrong error: {err}");
    };
    assert!(message.contains("must return a dict"), "{message}");
}

#[test]
fn returning_nothing_errors() {
    let err = run(
        "specifier silent() specifies position:\n\
         \x20   pass\n\
         ego = Object using silent()\n",
        0,
    )
    .unwrap_err();
    assert!(matches!(err, ScenicError::Type { .. }), "{err}");
}

#[test]
fn returning_undeclared_property_errors() {
    let err = run(
        "specifier sneaky() specifies position:\n\
         \x20   return {'position': 0 @ 0, 'heading': 1}\n\
         ego = Object using sneaky()\n",
        0,
    )
    .unwrap_err();
    let ScenicError::Runtime { message, .. } = err else {
        panic!("wrong error: {err}");
    };
    assert!(message.contains("does not declare"), "{message}");
}

#[test]
fn missing_declared_property_errors() {
    let err = run(
        "specifier partial() specifies position, heading:\n\
         \x20   return {'position': 0 @ 0}\n\
         ego = Object using partial()\n",
        0,
    )
    .unwrap_err();
    let ScenicError::Specifier { message, .. } = err else {
        panic!("wrong error: {err}");
    };
    assert!(message.contains("did not produce"), "{message}");
}

#[test]
fn missing_argument_errors() {
    let err = run(
        "specifier east(d) specifies position:\n\
         \x20   return {'position': d @ 0}\n\
         ego = Object using east()\n",
        0,
    )
    .unwrap_err();
    let ScenicError::Runtime { message, .. } = err else {
        panic!("wrong error: {err}");
    };
    assert!(message.contains("missing argument"), "{message}");
}

#[test]
fn extra_argument_errors() {
    let err = run(
        "specifier atOrigin() specifies position:\n\
         \x20   return {'position': 0 @ 0}\n\
         ego = Object using atOrigin(1)\n",
        0,
    )
    .unwrap_err();
    assert!(matches!(err, ScenicError::Runtime { .. }), "{err}");
}

#[test]
fn unexpected_keyword_errors() {
    let err = run(
        "specifier atOrigin() specifies position:\n\
         \x20   return {'position': 0 @ 0}\n\
         ego = Object using atOrigin(q=1)\n",
        0,
    )
    .unwrap_err();
    let ScenicError::Runtime { message, .. } = err else {
        panic!("wrong error: {err}");
    };
    assert!(message.contains("unexpected keyword"), "{message}");
}

#[test]
fn requires_of_unspecified_property_errors() {
    let err = run(
        "specifier needy() specifies position requires flavor:\n\
         \x20   return {'position': self.flavor @ 0}\n\
         ego = Object using needy()\n",
        0,
    )
    .unwrap_err();
    let ScenicError::Specifier { message, .. } = err else {
        panic!("wrong error: {err}");
    };
    assert!(message.contains("flavor"), "{message}");
}

#[test]
fn recursive_specifier_bodies_are_bounded() {
    // A specifier whose body constructs an object using itself: the
    // call-depth guard must stop it.
    let err = run(
        "specifier viral() specifies position:\n\
         \x20   Object using viral(), with requireVisible False\n\
         \x20   return {'position': 0 @ 0}\n\
         ego = Object using viral()\n",
        0,
    )
    .unwrap_err();
    let ScenicError::Runtime { message, .. } = err else {
        panic!("wrong error: {err}");
    };
    assert!(message.contains("recursion"), "{message}");
}

// ---------------------------------------------------------------------
// Interplay with the rest of the language
// ---------------------------------------------------------------------

#[test]
fn specifier_is_a_first_class_value() {
    // `specifier` definitions live in the ordinary namespace; printing
    // one shows a useful description rather than crashing.
    let scene = run(
        "specifier atOrigin() specifies position:\n\
         \x20   return {'position': 0 @ 0}\n\
         x = atOrigin\n\
         ego = Object using atOrigin()\n",
        0,
    )
    .unwrap();
    assert_eq!(pos(&scene, 0), [0.0, 0.0]);
}

#[test]
fn specifier_closes_over_definition_environment() {
    let scene = run(
        "base = 10\n\
         specifier shifted(d) specifies position:\n\
         \x20   return {'position': (base + d) @ 0}\n\
         ego = Object at 0 @ 0\n\
         Object using shifted(2)\n",
        0,
    )
    .unwrap();
    assert_eq!(pos(&scene, 1), [12.0, 0.0]);
}

#[test]
fn variable_named_specifier_still_works() {
    // `specifier` is contextual: plain uses as an identifier parse.
    let scene = run("specifier = 4\nego = Object at specifier @ 0\n", 0).unwrap();
    assert_eq!(pos(&scene, 0), [4.0, 0.0]);
}

#[test]
fn geometric_operators_inside_bodies() {
    // Bodies are full Scenic: line-of-sight math with the ego works.
    let scene = run(
        "specifier mirrored() specifies position:\n\
         \x20   return {'position': ego offset by 0 @ -5}\n\
         ego = Object at 3 @ 3\n\
         Object using mirrored(), with requireVisible False\n",
        0,
    )
    .unwrap();
    assert_eq!(pos(&scene, 1), [3.0, -2.0]);
}

#[test]
fn mutation_applies_to_custom_specified_objects() {
    let scene = run(
        "specifier atOrigin() specifies position:\n\
         \x20   return {'position': 0 @ 0}\n\
         ego = Object at 20 @ 20\n\
         x = Object using atOrigin(), with requireVisible False\n\
         mutate x\n",
        11,
    )
    .unwrap();
    let [x, y] = pos(&scene, 1);
    assert!(x != 0.0 || y != 0.0, "mutation noise must move the object");
}

#[test]
fn specifiers_defined_in_imported_libraries() {
    // The motivating use case for the runtime-bound `using` syntax: a
    // library module (like the paper's gtaLib) exports a specifier; the
    // user program applies it without the parser ever seeing the
    // definition.
    use scenic::core::{compile_with_world, Module, World};
    let mut world = World::bare();
    world.add_module(
        "parking",
        Module {
            natives: Vec::new(),
            source: Some(
                "specifier gridSlot(i, pitch=5) specifies position:\n\
                 \x20   return {'position': (i * pitch) @ 10}\n"
                    .into(),
            ),
        },
    );
    let scenario = compile_with_world(
        "import parking\n\
         ego = Object at 0 @ 0\n\
         Object using gridSlot(1)\n\
         Object using gridSlot(2)\n\
         Object using gridSlot(3, pitch=7)\n",
        &world,
    )
    .unwrap();
    let scene = scenario.generate_seeded(0).unwrap();
    assert_eq!(pos(&scene, 1), [5.0, 10.0]);
    assert_eq!(pos(&scene, 2), [10.0, 10.0]);
    assert_eq!(pos(&scene, 3), [21.0, 10.0]);
}

#[test]
fn print_parse_round_trip_for_definitions() {
    let src = "specifier slot(gap, y=1) specifies position optionally heading requires width:\n\
               \x20   return {'position': gap @ y}\n\
               ego = Object using slot(2), facing 30 deg\n";
    let ast = scenic::lang::parse(src).unwrap();
    let printed = scenic::lang::print_program(&ast);
    let reparsed = scenic::lang::parse(&printed).unwrap();
    assert_eq!(ast, reparsed, "{printed}");
}
