//! Daemon-grade integration tests for `scenicd`.
//!
//! Everything here runs against a real daemon on a real socket: each
//! fixture binds an ephemeral port (`127.0.0.1:0`) and spawns the
//! accept loop in-process, so the full wire path — framing, dispatch,
//! the shared worker pool and scenario cache, streaming replies — is
//! exercised, not a mock. The suite pins three contracts:
//!
//! 1. **Determinism**: daemon-served scenes are byte-identical to local
//!    sampling, pinned against the same digest table as
//!    `tests/determinism.rs` for every bundled scenario.
//! 2. **Concurrency**: many clients with interleaved scenarios each get
//!    exactly their own scenes; results never cross streams.
//! 3. **Robustness**: truncated frames, oversized lengths, garbage
//!    JSON, stalled and dropped connections, and failing scenarios all
//!    produce typed errors or clean drops on *that* connection — the
//!    daemon keeps serving everyone else.

use scenic::serve::proto::{read_response, write_frame, Request, Response, SampleRequest};
use scenic::serve::{Client, ClientError, Server, ServerConfig, ServerHandle};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

// ---------------------------------------------------------------------
// Fixture
// ---------------------------------------------------------------------

/// Boots an in-process daemon on an ephemeral port.
fn daemon() -> ServerHandle {
    daemon_with(ServerConfig::default())
}

fn daemon_with(config: ServerConfig) -> ServerHandle {
    Server::bind_with("127.0.0.1:0", config)
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn accept loop")
}

fn connect(handle: &ServerHandle) -> Client {
    Client::connect_retry(handle.addr(), Duration::from_secs(5)).expect("connect to daemon")
}

/// Loads a bundled scenario file from `scenarios/`.
fn bundled(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("scenarios")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn sample_request(source: &str, world: &str, name: &str, n: usize) -> SampleRequest {
    SampleRequest {
        source: source.to_string(),
        world: world.to_string(),
        name: name.to_string(),
        n,
        seed: 7,
        jobs: 2,
        prune: true,
        engine: String::new(),
        format: "json".into(),
        timeout_ms: None,
    }
}

// ---------------------------------------------------------------------
// Determinism: daemon output is pinned to the same digests as local
// sampling (tests/determinism.rs) for every bundled scenario.
// ---------------------------------------------------------------------

const FNV_INIT: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv_str(mut hash: u64, text: &str) -> u64 {
    for byte in text.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

fn batch_digest(texts: &[String]) -> u64 {
    texts.iter().fold(FNV_INIT, |hash, t| fnv_str(hash, t))
}

/// The pinned 3-scene seed-7 batch digests from `tests/determinism.rs`:
/// the daemon must reproduce local `sample_batch` byte-for-byte.
const BUNDLED_BATCH_DIGESTS: &[(&str, &str, u64)] = &[
    ("simplest.scenic", "gta", 11147000041812585473),
    ("two_cars.scenic", "gta", 12432342917023476994),
    ("badly_parked.scenic", "gta", 13142882594589914072),
    ("gta_intersection.scenic", "gta", 15307603797103711724),
    ("gta_oncoming.scenic", "gta", 16107416849542298254),
    ("mars_bottleneck.scenic", "mars", 432406145982909675),
    ("mars_formation.scenic", "mars", 1255604280676792309),
];

#[test]
fn daemon_scenes_match_the_pinned_batch_digests() {
    let handle = daemon();
    let mut client = connect(&handle);
    for (name, world, expected) in BUNDLED_BATCH_DIGESTS {
        let scenes = client
            .sample_collect(&sample_request(&bundled(name), world, name, 3))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(scenes.len(), 3, "{name}");
        assert_eq!(
            batch_digest(&scenes),
            *expected,
            "{name}: daemon-served batch digest drifted from the local \
             sampling contract (scenes must be byte-identical to \
             `scenic sample` for the same seed)"
        );
    }
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn daemon_streams_are_byte_identical_to_in_process_sampling() {
    use scenic::prelude::*;
    use scenic::serve::format::render_scene;

    let handle = daemon();
    let mut client = connect(&handle);
    let source = bundled("two_cars.scenic");
    let world = scenic::gta::World::generate(scenic::gta::MapConfig::default());
    let scenario = compile_with_world(&source, world.core()).unwrap();
    for format in ["json", "summary", "gta", "wbt"] {
        let local: Vec<String> = Sampler::new(&scenario)
            .with_seed(7)
            .with_pruning()
            .sample_batch(4, 2)
            .unwrap()
            .iter()
            .map(|scene| render_scene(scene, format))
            .collect();
        let mut request = sample_request(&source, "gta", "two_cars", 4);
        request.format = format.into();
        // Indices must arrive in order, 0..n, exactly once.
        let mut seen = Vec::new();
        let mut remote = Vec::new();
        let (scenes, iterations, _elapsed) = client
            .sample(&request, |i, text| {
                seen.push(i);
                remote.push(text.to_string());
            })
            .unwrap();
        assert_eq!(seen, (0..4).collect::<Vec<_>>(), "{format}: stream order");
        assert_eq!(scenes, 4);
        assert!(iterations >= 4);
        assert_eq!(remote, local, "{format}: daemon text differs from local");
    }
}

// ---------------------------------------------------------------------
// Shared cache across clients and requests
// ---------------------------------------------------------------------

#[test]
fn clients_share_one_compile_per_scenario() {
    let handle = daemon();
    let source = bundled("simplest.scenic");
    let mut a = connect(&handle);
    let mut b = connect(&handle);
    match a
        .request(&Request::Compile {
            source: source.clone(),
            world: "gta".into(),
        })
        .unwrap()
    {
        Response::Compiled {
            cached,
            source_hash,
        } => {
            assert!(!cached, "first compile cannot be a hit");
            assert_eq!(source_hash, scenic::core::source_hash(&source));
        }
        other => panic!("unexpected reply {other:?}"),
    }
    // The second client hits the entry the first one created.
    match b
        .request(&Request::Compile {
            source: source.clone(),
            world: "gta".into(),
        })
        .unwrap()
    {
        Response::Compiled { cached, .. } => assert!(cached, "second compile must hit"),
        other => panic!("unexpected reply {other:?}"),
    }
    // ...and sampling reuses it too.
    a.sample_collect(&sample_request(&source, "gta", "simplest", 1))
        .unwrap();
    let stats = b.stats(true).unwrap();
    assert_eq!(stats.cache_entries, 1);
    assert_eq!(stats.cache_misses, 1, "exactly one compile ever ran");
    assert!(stats.cache_hits >= 2);
    assert_eq!(stats.scenes_served, 1);
    assert_eq!(
        stats.per_scenario,
        vec![("simplest".to_string(), 1)],
        "per-scenario scenes served"
    );
}

// ---------------------------------------------------------------------
// Concurrency: interleaved clients, results never cross streams
// ---------------------------------------------------------------------

#[test]
fn eight_concurrent_clients_each_get_exactly_their_scenario() {
    let handle = daemon();
    let addr = handle.addr();
    let threads: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                let (name, world, expected) =
                    BUNDLED_BATCH_DIGESTS[i % BUNDLED_BATCH_DIGESTS.len()];
                let mut client =
                    Client::connect_retry(addr, Duration::from_secs(5)).expect("connect");
                // Every client also interleaves control traffic with its
                // sampling to stir the dispatch paths.
                client.health().expect("health");
                let mut request = sample_request(&bundled(name), world, name, 3);
                request.jobs = 1 + i % 3;
                let scenes = client
                    .sample_collect(&request)
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
                client.stats(false).expect("status");
                (name, expected, batch_digest(&scenes))
            })
        })
        .collect();
    for thread in threads {
        let (name, expected, got) = thread.join().expect("client thread");
        assert_eq!(
            got, expected,
            "{name}: a concurrent client received scenes that are not \
             its own (results crossed streams or determinism broke)"
        );
    }
    let mut client = connect(&handle);
    let stats = client.stats(true).unwrap();
    assert_eq!(stats.scenes_served, 24, "8 clients x 3 scenes");
    assert_eq!(
        stats.cache_misses, 7,
        "7 distinct scenarios compile exactly once each"
    );
    assert_eq!(stats.protocol_errors, 0);
}

// ---------------------------------------------------------------------
// Robustness: malformed input hurts only its own connection
// ---------------------------------------------------------------------

/// Asserts the daemon still serves new clients.
fn assert_alive(handle: &ServerHandle) {
    let mut probe = connect(handle);
    probe.health().expect("daemon must keep serving");
}

#[test]
fn truncated_frame_drops_only_that_connection() {
    let handle = daemon();
    {
        let mut raw = TcpStream::connect(handle.addr()).unwrap();
        // Claim 100 bytes, send 10, vanish.
        raw.write_all(&100u32.to_be_bytes()).unwrap();
        raw.write_all(&[0x7b; 10]).unwrap();
    } // dropped here: the daemon sees EOF mid-frame
    assert_alive(&handle);
}

#[test]
fn oversized_length_prefix_gets_a_typed_error() {
    let handle = daemon();
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    raw.write_all(&u32::MAX.to_be_bytes()).unwrap();
    match read_response(&mut raw).unwrap() {
        Some(Response::Error { code, .. }) => assert_eq!(code, "frame-too-large"),
        other => panic!("expected frame-too-large error, got {other:?}"),
    }
    // The daemon closes the connection after a framing error.
    assert!(read_response(&mut raw).unwrap().is_none());
    assert_alive(&handle);
}

#[test]
fn garbage_json_gets_a_typed_error() {
    let handle = daemon();
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    write_frame(&mut raw, b"{this is not json").unwrap();
    match read_response(&mut raw).unwrap() {
        Some(Response::Error { code, .. }) => assert_eq!(code, "bad-json"),
        other => panic!("expected bad-json error, got {other:?}"),
    }
    assert!(read_response(&mut raw).unwrap().is_none());
    assert_alive(&handle);
}

#[test]
fn valid_json_with_wrong_schema_gets_a_typed_error() {
    let handle = daemon();
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    write_frame(&mut raw, br#"{"type": "make-me-a-sandwich"}"#).unwrap();
    match read_response(&mut raw).unwrap() {
        Some(Response::Error { code, .. }) => assert_eq!(code, "bad-message"),
        other => panic!("expected bad-message error, got {other:?}"),
    }
    assert_alive(&handle);
}

#[test]
fn stalled_partial_frame_is_reaped_by_the_read_timeout() {
    // Short read timeout so the stalled connection is reaped quickly.
    let handle = daemon_with(ServerConfig {
        read_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    });
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    raw.write_all(&[0, 0]).unwrap(); // half a length prefix, then silence
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    // The daemon must hang up on us (EOF), not hold the thread forever.
    assert!(
        read_response(&mut raw).unwrap().is_none(),
        "daemon should close a stalled connection"
    );
    assert_alive(&handle);
}

#[test]
fn mid_stream_client_disconnect_does_not_poison_the_daemon() {
    let handle = daemon();
    {
        let mut client = connect(&handle);
        // Start a long streaming reply, read one frame, vanish.
        client
            .send(&Request::Sample(sample_request(
                &bundled("two_cars.scenic"),
                "gta",
                "two_cars",
                50,
            )))
            .unwrap();
        let first = client.recv().unwrap();
        assert!(matches!(first, Response::Scene { .. }), "got {first:?}");
    } // connection dropped with ~49 scenes unsent
      // The daemon's write fails mid-stream; the shared pool and cache
      // must survive and serve the same scenario to the next client.
    let mut client = connect(&handle);
    let scenes = client
        .sample_collect(&sample_request(
            &bundled("two_cars.scenic"),
            "gta",
            "two_cars",
            3,
        ))
        .unwrap();
    assert_eq!(
        batch_digest(&scenes),
        12432342917023476994,
        "post-disconnect batch must still match the pinned digest"
    );
}

// ---------------------------------------------------------------------
// Request-level failures: structured errors, connection stays usable
// ---------------------------------------------------------------------

#[test]
fn failing_scenario_returns_a_structured_error_and_daemon_keeps_serving() {
    let handle = daemon();
    let mut client = connect(&handle);
    // `Car` is undefined in the bare world: sampling fails at request
    // level. The old panic path would have taken a worker thread (and
    // before the WorkerPanic refactor, the daemon's reply) with it.
    let err = client
        .sample_collect(&sample_request("ego = Car\n", "bare", "broken", 2))
        .expect_err("undefined class must fail");
    match err {
        ClientError::Daemon { code, message } => {
            assert_eq!(code, "sample");
            assert!(message.contains("Car"), "unhelpful message: {message}");
        }
        other => panic!("expected a structured daemon error, got {other}"),
    }
    // Same connection: still usable for the next request.
    client
        .health()
        .expect("connection survives a failed request");
    let scenes = client
        .sample_collect(&sample_request("ego = Object at 0 @ 0\n", "bare", "ok", 2))
        .expect("daemon serves after a failed scenario");
    assert_eq!(scenes.len(), 2);
    // Unknown world: a bad-request error, also non-fatal.
    let err = client
        .sample_collect(&sample_request("ego = Object\n", "jupiter", "x", 1))
        .expect_err("unknown world must fail");
    assert!(matches!(err, ClientError::Daemon { ref code, .. } if code == "bad-request"));
    // Unknown engine: same.
    let mut request = sample_request("ego = Object\n", "bare", "x", 1);
    request.engine = "quantum".into();
    let err = client
        .sample_collect(&request)
        .expect_err("unknown engine must fail");
    assert!(matches!(err, ClientError::Daemon { ref code, .. } if code == "bad-request"));
    client.health().expect("still alive after every failure");
}

#[test]
fn exceeded_request_deadline_is_a_typed_timeout_with_partial_results() {
    let handle = daemon();
    let mut client = connect(&handle);
    let mut request = sample_request(&bundled("two_cars.scenic"), "gta", "two_cars", 10);
    request.jobs = 1; // chunk size 1: the deadline check runs per scene
    request.timeout_ms = Some(0); // expires immediately after chunk one
    let mut streamed = 0;
    let err = client
        .sample(&request, |_, _| streamed += 1)
        .expect_err("a 0ms deadline cannot finish 10 scenes");
    assert!(
        matches!(err, ClientError::Daemon { ref code, .. } if code == "timeout"),
        "expected timeout, got {err}"
    );
    assert!(
        streamed >= 1,
        "scenes completed before the deadline are still delivered"
    );
    client.health().expect("connection survives a timeout");
}

// ---------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------

#[test]
fn health_status_and_graceful_shutdown() {
    let handle = daemon();
    let mut client = connect(&handle);
    client.health().expect("health");
    let stats = client.stats(false).unwrap();
    assert_eq!(stats.scenes_served, 0);
    assert!(
        stats.per_scenario.is_empty(),
        "status omits per-scenario rows"
    );
    assert!(stats.requests >= 1);
    client.shutdown().expect("graceful shutdown replies first");
    // The handle's own shutdown is now a no-op join; it must not error.
    handle.shutdown().expect("accept loop exits cleanly");
}
