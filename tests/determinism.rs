//! Cross-platform reproducibility of seeded sampling.
//!
//! The workspace pins its RNG to an explicit algorithm (xoshiro256++
//! seeded via SplitMix64 — see the vendored `rand` crate docs), so a
//! given seed must produce byte-identical scenes on every platform,
//! toolchain, and run. These digests are part of that contract: if one
//! changes, either the RNG algorithm or the sampling order changed, and
//! that is a breaking change to `Sampler::sample_seeded` semantics.

use scenic::gta::{scenarios, MapConfig, World};
use scenic::prelude::*;

/// FNV-1a (64-bit) over the scene's canonical JSON.
fn digest(scene: &Scene) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in scene.to_json().bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[test]
fn known_seed_produces_known_scene_digest() {
    let world = World::generate(MapConfig::default());
    let scenario = compile_with_world(scenarios::SIMPLEST, world.core()).unwrap();
    let scene = Sampler::new(&scenario).sample_seeded(42).unwrap();
    assert_eq!(
        digest(&scene),
        9199604626994008818,
        "seeded scene digest drifted: the pinned RNG stream or the \
         sampling order changed (breaking for sample_seeded)"
    );
}

#[test]
fn bare_world_digest_is_stable() {
    let scenario = compile(
        "ego = Object at 0 @ 0\n\
         Object at (5, 15) @ (5, 15), facing (0, 360) deg\n",
    )
    .unwrap();
    let scene = Sampler::new(&scenario).sample_seeded(7).unwrap();
    assert_eq!(
        digest(&scene),
        1650101027389927407,
        "seeded scene digest drifted: the pinned RNG stream or the \
         sampling order changed (breaking for sample_seeded)"
    );
}

#[test]
fn distinct_seeds_produce_distinct_scenes() {
    let world = World::generate(MapConfig::default());
    let scenario = compile_with_world(scenarios::SIMPLEST, world.core()).unwrap();
    let a = Sampler::new(&scenario).sample_seeded(1).unwrap();
    let b = Sampler::new(&scenario).sample_seeded(2).unwrap();
    assert_ne!(digest(&a), digest(&b));
}
