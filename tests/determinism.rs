//! Cross-platform reproducibility of seeded sampling.
//!
//! The workspace pins its RNG to an explicit algorithm (xoshiro256++
//! seeded via SplitMix64 — see the vendored `rand` crate docs), so a
//! given seed must produce byte-identical scenes on every platform,
//! toolchain, and run. These digests are part of that contract: if one
//! changes, either the RNG algorithm or the sampling order changed, and
//! that is a breaking change to `Sampler::sample_seeded` semantics.

use scenic::gta::{scenarios, MapConfig, World};
use scenic::prelude::*;

/// FNV-1a (64-bit) over the scene's canonical JSON.
fn digest(scene: &Scene) -> u64 {
    fnv(0xcbf2_9ce4_8422_2325, scene)
}

fn fnv(mut hash: u64, scene: &Scene) -> u64 {
    for byte in scene.to_json().bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// FNV-1a over the concatenated JSON of a whole batch.
fn batch_digest(scenes: &[Scene]) -> u64 {
    scenes.iter().fold(0xcbf2_9ce4_8422_2325, fnv)
}

/// Loads a bundled scenario file from `scenarios/`.
fn bundled(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("scenarios")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// The shared world instance a bundled scenario compiles against.
/// Worlds are deterministic and immutable, so the gta/mars instances
/// are generated once and shared (map generation is the expensive part
/// of this suite).
fn bundled_world(world: &str) -> &'static scenic::core::World {
    use std::sync::OnceLock;
    static GTA: OnceLock<scenic::core::World> = OnceLock::new();
    static MARS: OnceLock<scenic::core::World> = OnceLock::new();
    static BARE: OnceLock<scenic::core::World> = OnceLock::new();
    match world {
        "gta" => GTA.get_or_init(|| World::generate(MapConfig::default()).core().clone()),
        "mars" => MARS.get_or_init(scenic::mars::world),
        _ => BARE.get_or_init(scenic::core::World::bare),
    }
}

fn compile_bundled(name: &str, world: &str) -> scenic::core::Scenario {
    let source = bundled(name);
    compile_with_world(&source, bundled_world(world)).expect("bundled scenario compiles")
}

#[test]
fn known_seed_produces_known_scene_digest() {
    let world = World::generate(MapConfig::default());
    let scenario = compile_with_world(scenarios::SIMPLEST, world.core()).unwrap();
    let scene = Sampler::new(&scenario).sample_seeded(42).unwrap();
    assert_eq!(
        digest(&scene),
        9199604626994008818,
        "seeded scene digest drifted: the pinned RNG stream or the \
         sampling order changed (breaking for sample_seeded)"
    );
}

#[test]
fn bare_world_digest_is_stable() {
    let scenario = compile(
        "ego = Object at 0 @ 0\n\
         Object at (5, 15) @ (5, 15), facing (0, 360) deg\n",
    )
    .unwrap();
    let scene = Sampler::new(&scenario).sample_seeded(7).unwrap();
    assert_eq!(
        digest(&scene),
        1650101027389927407,
        "seeded scene digest drifted: the pinned RNG stream or the \
         sampling order changed (breaking for sample_seeded)"
    );
}

#[test]
fn distinct_seeds_produce_distinct_scenes() {
    let world = World::generate(MapConfig::default());
    let scenario = compile_with_world(scenarios::SIMPLEST, world.core()).unwrap();
    let a = Sampler::new(&scenario).sample_seeded(1).unwrap();
    let b = Sampler::new(&scenario).sample_seeded(2).unwrap();
    assert_ne!(digest(&a), digest(&b));
}

// ---------------------------------------------------------------------
// sample_batch: thread-count invariance + pinned digests per bundled
// scenario. The batch seed-derivation (`derive_scene_seed`) is part of
// the reproducibility contract exactly like the per-seed stream: if one
// of these digests drifts, batch output changed on every platform
// (breaking for `sample_batch`).
// ---------------------------------------------------------------------

/// Every bundled `scenarios/*.scenic` file with its world and the
/// pinned digest of a 3-scene batch at root seed 7.
const BUNDLED_BATCH_DIGESTS: &[(&str, &str, u64)] = &[
    ("simplest.scenic", "gta", 11147000041812585473),
    ("two_cars.scenic", "gta", 12432342917023476994),
    ("badly_parked.scenic", "gta", 13142882594589914072),
    ("gta_intersection.scenic", "gta", 15307603797103711724),
    ("gta_oncoming.scenic", "gta", 16107416849542298254),
    ("mars_bottleneck.scenic", "mars", 432406145982909675),
    ("mars_formation.scenic", "mars", 1255604280676792309),
];

#[test]
fn batch_digests_are_pinned_and_thread_count_invariant() {
    for (name, world, expected) in BUNDLED_BATCH_DIGESTS {
        let scenario = compile_bundled(name, world);
        let serial = Sampler::new(&scenario)
            .with_seed(7)
            .sample_batch(3, 1)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let parallel = Sampler::new(&scenario)
            .with_seed(7)
            .sample_batch(3, 4)
            .unwrap();
        assert_eq!(
            batch_digest(&serial),
            batch_digest(&parallel),
            "{name}: jobs=1 and jobs=4 disagree (batch sampling is not \
             thread-count invariant)"
        );
        assert_eq!(
            batch_digest(&serial),
            *expected,
            "{name}: batch digest drifted: the pinned RNG stream, the \
             seed derivation, or the sampling order changed (breaking \
             for sample_batch)"
        );
    }
}

// ---------------------------------------------------------------------
// §5.2 pruning is acceptance-invariant: guard-mode pruning draws the
// exact unpruned candidate stream and only abandons candidates that
// could never be accepted, so for every bundled scenario the accepted
// scenes — and therefore the pinned digests above — are byte-identical
// with pruning on or off. If this test fails, a prune guard rejected a
// viable candidate (the derivation in `prune::derive_params` produced
// unsound parameters) and pruning changed *which* scenes are sampled,
// not just how fast.
// ---------------------------------------------------------------------

#[test]
fn pruning_on_equals_pruning_off_for_every_bundled_scenario() {
    for (name, world, _) in BUNDLED_BATCH_DIGESTS {
        let scenario = compile_bundled(name, world);
        let plain = Sampler::new(&scenario)
            .with_seed(7)
            .sample_batch(3, 2)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let mut pruned_sampler = Sampler::new(&scenario).with_seed(7).with_pruning();
        let pruned = pruned_sampler
            .sample_batch(3, 2)
            .unwrap_or_else(|e| panic!("{name} (pruned): {e}"));
        assert_eq!(
            batch_digest(&plain),
            batch_digest(&pruned),
            "{name}: pruning changed the accepted scenes"
        );
    }
}

#[test]
fn batch_agrees_with_derived_seeded_draws() {
    let world = World::generate(MapConfig::default());
    let scenario = compile_with_world(scenarios::SIMPLEST, world.core()).unwrap();
    let batch = Sampler::new(&scenario)
        .with_seed(21)
        .sample_batch(3, 2)
        .unwrap();
    for (i, scene) in batch.iter().enumerate() {
        let seed = derive_scene_seed(21, i as u64);
        let expected = Sampler::new(&scenario).sample_seeded(seed).unwrap();
        assert_eq!(digest(scene), digest(&expected), "scene {i}");
    }
}

// ---------------------------------------------------------------------
// The on-disk artifact store: every pinned digest must hold when the
// scenario round-trips through the store (cold compile + write-back,
// then a warm load in a fresh cache with zero compiles). If a digest
// drifts only on the warm pass, the store's encode/decode lost part of
// the scenario (program, prune plan, or world linkage).
// ---------------------------------------------------------------------

#[test]
fn batch_digests_hold_through_the_disk_store() {
    use std::sync::Arc;
    let dir = std::env::temp_dir().join(format!("scenic-determinism-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // Cold pass: a store-backed cache compiles and persists each
    // bundled scenario; the digests must already match the table.
    {
        let store = Arc::new(ArtifactStore::open(&dir).unwrap());
        let cache = ScenarioCache::with_store(store);
        for (name, world_name, expected) in BUNDLED_BATCH_DIGESTS {
            let source = bundled(name);
            let scenario = cache
                .get_or_compile(world_name, &source, bundled_world(world_name))
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let scenes = Sampler::new(&scenario)
                .with_seed(7)
                .sample_batch(3, 2)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(batch_digest(&scenes), *expected, "{name}: cold digest");
        }
        assert_eq!(cache.misses(), BUNDLED_BATCH_DIGESTS.len());
    }
    // Warm pass: a fresh cache over the same directory must serve every
    // scenario from disk — zero compiles — and reproduce the digests.
    let store = Arc::new(ArtifactStore::open(&dir).unwrap());
    let cache = ScenarioCache::with_store(Arc::clone(&store));
    for (name, world_name, expected) in BUNDLED_BATCH_DIGESTS {
        let source = bundled(name);
        let scenario = cache
            .get_or_compile(world_name, &source, bundled_world(world_name))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let scenes = Sampler::new(&scenario)
            .with_seed(7)
            .sample_batch(3, 3)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            batch_digest(&scenes),
            *expected,
            "{name}: warm digest through the disk store"
        );
    }
    assert_eq!(cache.misses(), 0, "warm pass must not compile anything");
    assert_eq!(store.disk_hits(), BUNDLED_BATCH_DIGESTS.len());
    let _ = std::fs::remove_dir_all(&dir);
}
