//! Differential testing of the compiled draw path against the reference
//! tree-walking interpreter.
//!
//! The compiled engine's contract is *byte-identical output*: for any
//! scenario, seed, and job count, `--engine=compiled` must produce the
//! same scenes (and the same per-scene statistics) as `--engine=ast`,
//! because every lowering step — constant folding, prefix hoisting,
//! construction staging — is RNG-stream preserving. These tests compare
//! the two engines over every bundled scenario and over randomized
//! seeds; any divergence is a lowering bug, not a tolerance issue.

use proptest::prelude::*;
use scenic::gta::{MapConfig, World};
use scenic::prelude::*;

/// FNV-1a (64-bit) over one scene's canonical JSON.
fn fnv(mut hash: u64, scene: &Scene) -> u64 {
    for byte in scene.to_json().bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// FNV-1a over the concatenated JSON of a whole batch.
fn batch_digest(scenes: &[Scene]) -> u64 {
    scenes.iter().fold(0xcbf2_9ce4_8422_2325, fnv)
}

/// Loads a bundled scenario file from `scenarios/`.
fn bundled(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("scenarios")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn compile_bundled(name: &str, world: &str) -> scenic::core::Scenario {
    use std::sync::OnceLock;
    static GTA: OnceLock<scenic::core::World> = OnceLock::new();
    static MARS: OnceLock<scenic::core::World> = OnceLock::new();
    static BARE: OnceLock<scenic::core::World> = OnceLock::new();
    let source = bundled(name);
    let w = match world {
        "gta" => GTA.get_or_init(|| World::generate(MapConfig::default()).core().clone()),
        "mars" => MARS.get_or_init(scenic::mars::world),
        _ => BARE.get_or_init(scenic::core::World::bare),
    };
    compile_with_world(&source, w).expect("bundled scenario compiles")
}

/// Every bundled scenario with its world.
const BUNDLED: &[(&str, &str)] = &[
    ("simplest.scenic", "gta"),
    ("two_cars.scenic", "gta"),
    ("badly_parked.scenic", "gta"),
    ("gta_intersection.scenic", "gta"),
    ("gta_oncoming.scenic", "gta"),
    ("mars_bottleneck.scenic", "mars"),
    ("mars_formation.scenic", "mars"),
];

#[test]
fn engines_agree_on_every_bundled_scenario_and_job_count() {
    for (name, world) in BUNDLED {
        let scenario = compile_bundled(name, world);
        for jobs in [1, 4] {
            let ast = Sampler::new(&scenario)
                .with_seed(7)
                .with_engine(Engine::Ast)
                .sample_batch(3, jobs)
                .unwrap_or_else(|e| panic!("{name} (ast, jobs={jobs}): {e}"));
            let compiled = Sampler::new(&scenario)
                .with_seed(7)
                .with_engine(Engine::Compiled)
                .sample_batch(3, jobs)
                .unwrap_or_else(|e| panic!("{name} (compiled, jobs={jobs}): {e}"));
            assert_eq!(
                batch_digest(&ast),
                batch_digest(&compiled),
                "{name}, jobs={jobs}: compiled engine diverged from the \
                 AST reference"
            );
        }
    }
}

#[test]
fn engines_agree_on_statistics_and_pruned_sampling() {
    for (name, world) in BUNDLED {
        let scenario = compile_bundled(name, world);
        let mut ast = Sampler::new(&scenario)
            .with_seed(11)
            .with_engine(Engine::Ast)
            .with_pruning();
        let a = ast
            .sample_batch_report(2, 2)
            .unwrap_or_else(|e| panic!("{name} (ast): {e}"));
        let mut compiled = Sampler::new(&scenario)
            .with_seed(11)
            .with_engine(Engine::Compiled)
            .with_pruning();
        let c = compiled
            .sample_batch_report(2, 2)
            .unwrap_or_else(|e| panic!("{name} (compiled): {e}"));
        assert_eq!(
            batch_digest(&a.scenes),
            batch_digest(&c.scenes),
            "{name}: engines diverge under prune guards"
        );
        assert_eq!(
            a.per_scene, c.per_scene,
            "{name}: engines count rejections differently"
        );
    }
}

/// The differential tests above would pass vacuously if the compiled
/// engine silently fell back to the reference path everywhere; pin that
/// the bundled scenarios actually take the hoisted fast path.
#[test]
fn bundled_scenarios_take_the_hoisted_path() {
    for (name, world) in BUNDLED {
        let scenario = compile_bundled(name, world);
        assert!(
            scenario.compiled().hoisted(),
            "{name}: compiled engine fell back to the reference path"
        );
    }
}

/// A program whose user code shadows a name the library classes depend
/// on must *not* hoist (the AST engine resolves the library's reference
/// to the user's definition), but must still sample identically via the
/// fallback.
#[test]
fn library_shadowing_disables_hoisting_but_stays_identical() {
    let world = World::generate(MapConfig::default());
    // gtaLib's Car defaults reference `roadDirection`; shadow it.
    let source = "roadDirection = 0\nego = Object at 0 @ 0\n";
    let scenario = compile_with_world(source, world.core()).unwrap();
    assert!(
        !scenario.compiled().hoisted(),
        "shadowing a library name must disqualify hoisting"
    );
    let a = Sampler::new(&scenario)
        .with_seed(3)
        .with_engine(Engine::Ast)
        .sample_batch(2, 1)
        .unwrap();
    let c = Sampler::new(&scenario)
        .with_seed(3)
        .with_engine(Engine::Compiled)
        .sample_batch(2, 1)
        .unwrap();
    assert_eq!(batch_digest(&a), batch_digest(&c));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized-seed differential check on the two scenario families
    /// with the richest draw paths (field-following roads and
    /// multi-object formations).
    #[test]
    fn engines_agree_on_random_seeds(seed in 0u64..1_000_000) {
        for (name, world) in [("gta_oncoming.scenic", "gta"), ("mars_formation.scenic", "mars")] {
            let scenario = compile_bundled(name, world);
            let a = Sampler::new(&scenario)
                .with_seed(seed)
                .with_engine(Engine::Ast)
                .sample_batch(1, 1)
                .unwrap();
            let c = Sampler::new(&scenario)
                .with_seed(seed)
                .with_engine(Engine::Compiled)
                .sample_batch(1, 1)
                .unwrap();
            prop_assert_eq!(batch_digest(&a), batch_digest(&c));
        }
    }

    /// The grid-indexed `Region::contains` must agree with a linear scan
    /// over the region's polygons at every probe point, including on
    /// box edges and far outside the indexed bounds.
    #[test]
    fn indexed_region_contains_matches_linear_scan(
        layout_seed in 0u64..1_000_000,
        n_rects in 1usize..12,
    ) {
        use rand::{Rng, SeedableRng};
        use scenic::geom::{Heading, Vec2, VectorField};
        let mut rng = rand::rngs::StdRng::seed_from_u64(layout_seed);
        let polys: Vec<Polygon> = (0..n_rects)
            .map(|_| {
                let x = rng.gen_range(-40.0..40.0);
                let y = rng.gen_range(-40.0..40.0);
                let w = rng.gen_range(0.5..25.0);
                let h = rng.gen_range(0.5..25.0);
                Polygon::rectangle(Vec2::new(x, y), w, h)
            })
            .collect();
        let probes: Vec<(f64, f64)> = (0..32)
            .map(|_| (rng.gen_range(-60.0..60.0), rng.gen_range(-60.0..60.0)))
            .collect();
        let region = Region::polygons_with_orientation(
            polys.clone(),
            VectorField::Constant(Heading::NORTH),
        );
        let mut points: Vec<Vec2> = probes.iter().map(|&(x, y)| Vec2::new(x, y)).collect();
        // Degenerate probes: exact corners and box-edge midpoints.
        for p in &polys {
            points.extend(p.vertices().iter().copied());
            let bb = p.aabb();
            points.push(Vec2::new(bb.min.x, (bb.min.y + bb.max.y) / 2.0));
            points.push(Vec2::new(bb.max.x, bb.min.y));
        }
        for p in points {
            let linear = polys.iter().any(|poly| poly.contains(p));
            prop_assert_eq!(region.contains(p), linear);
        }
    }
}
