//! Determinism of the detector pipeline behind `scenic exp`.
//!
//! `tests/determinism.rs` pins the sampler's scene streams; this suite
//! extends the contract through the rest of the experiment pipeline:
//! rendering, simulator export, dataset generation, and detector
//! training/evaluation. The `scenic exp` artifacts promise
//! byte-identical output for a given seed at any `--jobs` value, which
//! is only true if every stage downstream of the sampler is a pure
//! function of the sampled scenes.

use scenic::detect::{Dataset, Detector};
use scenic::gta::{scenarios, MapConfig, World};
use scenic::prelude::*;
use scenic::sim::{render_scene, to_gta_json_lines, RenderedImage};

/// FNV-1a (64-bit) over a string.
fn fnv_str(mut hash: u64, s: &str) -> u64 {
    for byte in s.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// FNV-1a over the canonical JSON of a rendered-image sequence.
fn images_digest(images: &[RenderedImage]) -> u64 {
    images.iter().fold(0xcbf2_9ce4_8422_2325, |hash, img| {
        fnv_str(hash, &serde_json::to_string(img).expect("image serializes"))
    })
}

fn gta_world() -> &'static World {
    use std::sync::OnceLock;
    static GTA: OnceLock<World> = OnceLock::new();
    GTA.get_or_init(|| World::generate(MapConfig::default()))
}

#[test]
fn render_digest_is_pinned() {
    // Rendering is a pure function of the scene: a pinned scene stream
    // must produce a pinned image stream. If this digest drifts while
    // determinism.rs still passes, rendering itself became
    // nondeterministic (or changed semantics).
    let world = gta_world();
    let scenario = compile_with_world(scenarios::TWO_CARS, world.core()).unwrap();
    let scenes = Sampler::new(&scenario)
        .with_seed(11)
        .sample_batch(4, 2)
        .unwrap();
    let images: Vec<RenderedImage> = scenes.iter().map(render_scene).collect();
    assert_eq!(
        images_digest(&images),
        1600344325882755307,
        "rendered-image digest drifted: render_scene output changed \
         for a pinned scene stream"
    );
}

#[test]
fn export_digest_is_pinned() {
    // Simulator export (the GTA command stream of §3/§6.1) rides the
    // same contract: pure in the scene, stable across runs.
    let world = gta_world();
    let scenario = compile_with_world(scenarios::TWO_CARS, world.core()).unwrap();
    let scenes = Sampler::new(&scenario)
        .with_seed(11)
        .sample_batch(4, 2)
        .unwrap();
    let digest = scenes.iter().fold(0xcbf2_9ce4_8422_2325, |hash, scene| {
        fnv_str(hash, &to_gta_json_lines(scene))
    });
    assert_eq!(
        digest, 1116107135242672300,
        "GTA export digest drifted: to_gta_json_lines output changed \
         for a pinned scene stream"
    );
}

#[test]
fn dataset_generation_is_jobs_invariant() {
    // Dataset::from_source runs on the parallel batch path; the images
    // AND the sampling-cost counters must not depend on the thread
    // count (the exp artifacts embed the counters).
    let world = gta_world();
    let serial = Dataset::from_source(scenarios::TWO_CARS, world.core(), 8, 5, 1).unwrap();
    let parallel = Dataset::from_source(scenarios::TWO_CARS, world.core(), 8, 5, 4).unwrap();
    assert_eq!(
        images_digest(&serial.images),
        images_digest(&parallel.images),
        "jobs=1 and jobs=4 disagree on Dataset::from_source images"
    );
    assert_eq!(serial.stats.scenes, parallel.stats.scenes);
    assert_eq!(serial.stats.iterations, parallel.stats.iterations);
}

#[test]
fn detector_metrics_are_pinned_and_jobs_invariant() {
    // The full train → evaluate leg for a fixed seed. The evaluation
    // seed fixes the detector's noise stream, so the resulting metrics
    // are part of the reproducibility contract the EXPERIMENTS.json
    // artifact relies on.
    let world = gta_world();
    let metrics_at = |jobs: usize| {
        let train = Dataset::from_source(scenarios::TWO_CARS, world.core(), 30, 3, jobs).unwrap();
        let test = Dataset::from_source(scenarios::TWO_CARS, world.core(), 10, 4, jobs).unwrap();
        let detector = Detector::train(&train.images);
        detector.evaluate(&test.images, 9)
    };
    let serial = metrics_at(1);
    let parallel = metrics_at(4);
    assert_eq!(
        (serial.precision, serial.recall, serial.images),
        (parallel.precision, parallel.recall, parallel.images),
        "jobs=1 and jobs=4 disagree on detector metrics"
    );
    let pinned = format!(
        "{:.6} {:.6} {}",
        serial.precision, serial.recall, serial.images
    );
    assert_eq!(
        pinned, "70.000000 85.000000 10",
        "detector train/evaluate metrics drifted for a pinned dataset"
    );
}
