# A requirement no sample can ever satisfy: distances are nonnegative.
ego = Car
other = Car offset by (-5, 5) @ (10, 20)
require (distance to other) < 0
