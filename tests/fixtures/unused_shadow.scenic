# Dead code: `unusedSpot` is never read, and the first `limit` binding
# is overwritten before any use.
ego = Car
unusedSpot = OrientedPoint on road
limit = 5
limit = 10
require ego can see 0 @ limit
