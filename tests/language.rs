//! Language semantics torture tests: error paths, edge cases, and the
//! less-traveled corners of §4/§5.

use scenic::core::{Rejection, ScenicError};
use scenic::prelude::*;

fn run(source: &str, seed: u64) -> Result<Scene, ScenicError> {
    compile(source)?.generate_seeded(seed)
}

// ---------------------------------------------------------------------
// Error reporting
// ---------------------------------------------------------------------

#[test]
fn undefined_variable_reports_name_and_line() {
    let err = run("ego = Object at 0 @ 0\nx = missing + 1\n", 0).unwrap_err();
    let ScenicError::Undefined { name, line } = err else {
        panic!("wrong error: {err}");
    };
    assert_eq!(name, "missing");
    assert_eq!(line, 2);
}

#[test]
fn unknown_class_is_undefined() {
    let err = run("ego = Spaceship\n", 0).unwrap_err();
    assert!(matches!(err, ScenicError::Undefined { .. }), "{err}");
}

#[test]
fn ego_must_be_an_object() {
    let err = run("ego = 5\n", 0).unwrap_err();
    assert!(matches!(err, ScenicError::Type { .. }), "{err}");
}

#[test]
fn type_errors_carry_messages() {
    let err = run("ego = Object at 0 @ 0\nx = 3 at 1 @ 2\n", 0).unwrap_err();
    let ScenicError::Type { message, .. } = err else {
        panic!("wrong error: {err}");
    };
    assert!(message.contains("vector field"), "{message}");
}

#[test]
fn division_by_zero() {
    let err = run("ego = Object at 0 @ 0\nx = 1 / 0\n", 0).unwrap_err();
    assert!(matches!(err, ScenicError::Runtime { .. }), "{err}");
}

#[test]
fn calling_a_scalar_fails() {
    let err = run("x = 3\nego = Object at 0 @ 0\ny = x(1)\n", 0).unwrap_err();
    assert!(matches!(err, ScenicError::Type { .. }), "{err}");
}

#[test]
fn list_index_out_of_range() {
    let err = run("ego = Object at 0 @ 0\nx = [1, 2][5]\n", 0).unwrap_err();
    assert!(matches!(err, ScenicError::Runtime { .. }), "{err}");
}

#[test]
fn wrong_keyword_argument() {
    let err = run(
        "def f(a):\n    return a\nego = Object at 0 @ 0\nf(b=1)\n",
        0,
    )
    .unwrap_err();
    assert!(matches!(err, ScenicError::Runtime { .. }), "{err}");
}

#[test]
fn missing_function_argument() {
    let err = run(
        "def f(a, b):\n    return a\nego = Object at 0 @ 0\nf(1)\n",
        0,
    )
    .unwrap_err();
    assert!(matches!(err, ScenicError::Runtime { .. }), "{err}");
}

#[test]
fn recursion_is_bounded() {
    let err = run(
        "def f(n):\n    return f(n)\nego = Object at 0 @ 0\nf(1)\n",
        0,
    )
    .unwrap_err();
    let ScenicError::Runtime { message, .. } = err else {
        panic!("wrong error");
    };
    assert!(message.contains("recursion"), "{message}");
}

// ---------------------------------------------------------------------
// Random control flow restriction (§4)
// ---------------------------------------------------------------------

#[test]
fn random_while_condition_rejected() {
    let err = run(
        "x = (0, 1)\nego = Object at 0 @ 0\nwhile x > 2:\n    pass\n",
        0,
    )
    .unwrap_err();
    assert!(
        matches!(err, ScenicError::RandomControlFlow { .. }),
        "{err}"
    );
}

#[test]
fn random_ternary_condition_rejected() {
    let err = run(
        "x = (0, 1)\nego = Object at 0 @ 0\ny = 1 if x > 0.5 else 2\n",
        0,
    )
    .unwrap_err();
    assert!(
        matches!(err, ScenicError::RandomControlFlow { .. }),
        "{err}"
    );
}

#[test]
fn randomness_taints_through_arithmetic() {
    let err = run(
        "x = (0, 1)\ny = x * 2 + 1\nego = Object at 0 @ 0\nif y > 1:\n    pass\n",
        0,
    )
    .unwrap_err();
    assert!(
        matches!(err, ScenicError::RandomControlFlow { .. }),
        "{err}"
    );
}

#[test]
fn is_none_on_random_value_is_fine() {
    // Identity vs None is structural, not value-dependent (Fig. 18's
    // `model is None` guard).
    let scene = run(
        "x = (0, 1)\nego = Object at 0 @ 0\ny = 1 if x is None else 2\nObject at 0 @ y * 5\n",
        0,
    )
    .unwrap();
    assert_eq!(scene.objects[1].position[1], 10.0);
}

#[test]
fn deterministic_conditions_work() {
    let scene = run(
        "n = 3\nego = Object at 0 @ 0\nif n > 2:\n    Object at 0 @ 10\nelse:\n    Object at 0 @ 20\n",
        0,
    )
    .unwrap();
    assert_eq!(scene.objects[1].position[1], 10.0);
}

// ---------------------------------------------------------------------
// Soft requirements and rejection bookkeeping
// ---------------------------------------------------------------------

#[test]
fn soft_requirement_probability_must_be_constant() {
    let err = run(
        "ego = Object at 0 @ 0\np = (0, 1)\nrequire[p] ego can see 0 @ 5\n",
        0,
    )
    .unwrap_err();
    assert!(matches!(err, ScenicError::Runtime { .. }), "{err}");
}

#[test]
fn requirement_rejection_carries_line() {
    let err = run("ego = Object at 0 @ 0\nrequire 1 > 2\n", 0).unwrap_err();
    assert_eq!(
        err,
        ScenicError::Rejected(Rejection::Requirement { line: 2 })
    );
}

#[test]
fn requirements_checked_after_mutation() {
    // The requirement references the post-noise position (Fig. 25's
    // ordering): with a tight bound it must sometimes reject.
    let scenario = compile(
        "ego = Object at 0 @ 0\nc = Object at 0 @ 20\nmutate c\nrequire c.position.y > 20\n",
    )
    .unwrap();
    let mut saw_reject = false;
    let mut saw_accept = false;
    for seed in 0..40 {
        match scenario.generate_seeded(seed) {
            Ok(scene) => {
                saw_accept = true;
                assert!(scene.objects[1].position[1] > 20.0);
            }
            Err(ScenicError::Rejected(Rejection::Requirement { .. })) => saw_reject = true,
            Err(other) => panic!("unexpected: {other}"),
        }
    }
    assert!(saw_accept && saw_reject, "mutation+requirement interaction");
}

// ---------------------------------------------------------------------
// Classes and specifiers
// ---------------------------------------------------------------------

#[test]
fn class_shadowing_most_derived_default_wins() {
    let scene = run(
        "class A:\n    width: 2\nclass B(A):\n    width: 4\nclass C(B):\n    pass\n\
         ego = Object at 0 @ 0\nC at 10 @ 0, with requireVisible False\n",
        0,
    )
    .unwrap();
    assert_eq!(scene.objects[1].width, 4.0);
}

#[test]
fn with_specifier_defines_new_properties() {
    let scene = run(
        "ego = Object at 0 @ 0, with flavor 'salt', with count 3\n",
        0,
    )
    .unwrap();
    let ego = scene.ego();
    assert_eq!(ego.property("flavor").unwrap().as_str(), Some("salt"));
    assert_eq!(ego.property("count").unwrap().as_number(), Some(3.0));
}

#[test]
fn heading_specified_twice_is_error() {
    let err = run("ego = Object at 0 @ 0, facing 10 deg, facing 20 deg\n", 0).unwrap_err();
    assert!(matches!(err, ScenicError::Specifier { .. }), "{err}");
}

#[test]
fn with_position_conflicts_with_at() {
    let err = run("ego = Object at 0 @ 0, with position 1 @ 1\n", 0).unwrap_err();
    assert!(matches!(err, ScenicError::Specifier { .. }), "{err}");
}

#[test]
fn default_chain_through_self() {
    // width → model-free three-level self dependency chain.
    let scene = run(
        "class T:\n    a: 2\n    b: self.a * 3\n    c: self.b + self.a\n\
         ego = Object at 0 @ 0\nT at 10 @ 0, with requireVisible False\n",
        0,
    )
    .unwrap();
    let t = &scene.objects[1];
    assert_eq!(t.property("c").unwrap().as_number(), Some(8.0));
}

#[test]
fn cyclic_self_defaults_error() {
    let err = run(
        "class T:\n    a: self.b\n    b: self.a\n\
         ego = Object at 0 @ 0\nT at 10 @ 0\n",
        0,
    )
    .unwrap_err();
    assert!(matches!(err, ScenicError::Specifier { .. }), "{err}");
}

#[test]
fn point_and_oriented_point_are_not_physical() {
    let scene = run(
        "ego = Object at 0 @ 0\np = Point at 50 @ 50\nq = OrientedPoint at 60 @ 60\n",
        0,
    )
    .unwrap();
    // Only the ego is in the scene; points don't collide or render.
    assert_eq!(scene.objects.len(), 1);
}

#[test]
fn ego_can_be_reassigned() {
    // The last assignment to ego wins (as in the paper's semantics where
    // ego is just a special variable).
    let scene = run("ego = Object at 0 @ 0\nc = Object at 0 @ 10\nego = c\n", 0).unwrap();
    assert!(scene.objects[1].is_ego);
    assert!(!scene.objects[0].is_ego);
}

// ---------------------------------------------------------------------
// Values and builtins
// ---------------------------------------------------------------------

#[test]
fn list_and_dict_operations() {
    let scene = run(
        "xs = [1, 2, 3] + [4]\n\
         d = {'a': 10, 'b': 20}\n\
         ego = Object at 0 @ 0, with n len(xs), with last xs[-1], with a d['a']\n",
        0,
    )
    .unwrap();
    let ego = scene.ego();
    assert_eq!(ego.property("n").unwrap().as_number(), Some(4.0));
    assert_eq!(ego.property("last").unwrap().as_number(), Some(4.0));
    assert_eq!(ego.property("a").unwrap().as_number(), Some(10.0));
}

#[test]
fn string_concatenation_and_comparison() {
    let scenario =
        compile("ego = Object at 0 @ 0\nrequire ('ab' + 'cd') == 'abcd'\nrequire 'x' != 'y'\n")
            .unwrap();
    assert!(scenario.generate_seeded(0).is_ok());
}

#[test]
fn uniform_over_objects_and_discrete_weights() {
    let scene = run(
        "choice = Uniform('a', 'b', 'c')\n\
         w = Discrete({'heads': 1, 'tails': 1})\n\
         ego = Object at 0 @ 0, with pick choice, with flip w\n",
        3,
    )
    .unwrap();
    let pick = scene
        .ego()
        .property("pick")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    assert!(["a", "b", "c"].contains(&pick.as_str()));
}

#[test]
fn nested_function_closures() {
    let scene = run(
        "base = 100\n\
         def outer(k):\n    def inner(j):\n        return base + k + j\n    return inner(5)\n\
         ego = Object at 0 @ 0, with v outer(10)\n",
        0,
    )
    .unwrap();
    assert_eq!(scene.ego().property("v").unwrap().as_number(), Some(115.0));
}

#[test]
fn for_loop_over_list_literal() {
    let scene = run(
        "ego = Object at 0 @ 0\nfor dy in [10, 20, 30]:\n    Object at 0 @ dy\n",
        0,
    )
    .unwrap();
    assert_eq!(scene.objects.len(), 4);
    assert_eq!(scene.objects[3].position[1], 30.0);
}

#[test]
fn while_loop_builds_row() {
    let scene = run(
        "ego = Object at 0 @ 0\nn = 0\nwhile n < 3:\n    Object at (n * 10 + 10) @ 0\n    n = n + 1\n",
        0,
    )
    .unwrap();
    assert_eq!(scene.objects.len(), 4);
}

#[test]
fn vector_component_access() {
    let scenario = compile(
        "v = 3 @ 4\nego = Object at v\nrequire ego.position.x == 3\nrequire ego.position.y == 4\n",
    )
    .unwrap();
    assert!(scenario.generate_seeded(0).is_ok());
}

#[test]
fn printed_variant_scenarios_still_run() {
    // Print a parsed scenario back to source and sample the result:
    // printer and interpreter agree.
    let src = "ego = Object at 0 @ 0, facing 45 deg\nObject beyond 0 @ 10 by 0 @ 2, with requireVisible False\n";
    let ast = scenic::lang::parse(src).unwrap();
    let printed = scenic::lang::print_program(&ast);
    let scene_a = run(src, 5).unwrap();
    let scene_b = run(&printed, 5).unwrap();
    assert_eq!(scene_a.objects[1].position, scene_b.objects[1].position);
}
