//! End-to-end tests of `scenic lint` and the unified diagnostics
//! pipeline: golden text output for the buggy fixtures (codes, spans,
//! and order are pinned exactly), JSON output shape, and the exit-code
//! contract (0 clean/warnings, 1 under `--deny warnings`, 2 on errors).

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

/// Runs `scenic` from the repo root so fixture paths (and the file
/// names echoed in diagnostics) stay relative and stable.
fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_scenic"))
        .current_dir(repo_root())
        .args(args)
        .output()
        .expect("failed to launch scenic binary")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

fn write_scenario(name: &str, source: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("scenic-lint-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, source).unwrap();
    path
}

/// The diagnostic codes in a text rendering, in output order.
fn codes_in(text: &str) -> Vec<String> {
    text.lines()
        .filter_map(|l| {
            let rest = l
                .strip_prefix("error[")
                .or_else(|| l.strip_prefix("warning["))
                .or_else(|| l.strip_prefix("info["))?;
            Some(rest.split(']').next().unwrap().to_string())
        })
        .collect()
}

const UNSAT: &str = "tests/fixtures/unsat_requirement.scenic";
const UNUSED: &str = "tests/fixtures/unused_shadow.scenic";

#[test]
fn unsat_requirement_fixture_is_e101_with_exact_span() {
    let out = run(&["lint", UNSAT]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    let text = stdout(&out);
    // Golden: the exact E101 block, carets included.
    let golden = "\
error[E101]: statically-unsatisfiable-requirement: this requirement is false for every possible sample, so the scenario can never generate a scene
  --> tests/fixtures/unsat_requirement.scenic:4:1
   |
 4 | require (distance to other) < 0
   | ^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^
   = help: the condition's abstract value is definitely false; fix or remove it
";
    assert!(text.starts_with(golden), "golden mismatch:\n{text}");
    // Order: the error first, then the pruning notes (I203 from the
    // same requirement, then the three derivation decisions).
    assert_eq!(
        codes_in(&text),
        ["E101", "I203", "I201", "I201", "I201"],
        "{text}"
    );
}

#[test]
fn unused_and_shadowed_fixture_is_w001_then_w002() {
    let out = run(&["lint", UNUSED]);
    // Warnings alone do not fail the lint.
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let text = stdout(&out);
    let golden = "\
warning[W001]: unused-definition: `unusedSpot` is never used
  --> tests/fixtures/unused_shadow.scenic:4:1
   |
 4 | unusedSpot = OrientedPoint on road
   | ^^^^^^^^^^
   = help: remove the definition, or rename it `_unusedSpot` to keep it deliberately
warning[W002]: shadowed-binding: `limit` is rebound here, but the binding at line 5 was never read
  --> tests/fixtures/unused_shadow.scenic:6:1
   |
 6 | limit = 10
   | ^^^^^
   = help: remove the earlier `limit = ...` at line 5
";
    assert!(text.starts_with(golden), "golden mismatch:\n{text}");
    assert_eq!(
        codes_in(&text),
        ["W001", "W002", "I201", "I201", "I201"],
        "{text}"
    );
    // The per-file tally goes to stderr, not into the golden stdout.
    assert!(
        stderr(&out).contains("0 error(s), 2 warning(s), 3 note(s)"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn deny_warnings_turns_warnings_into_exit_1() {
    let out = run(&["lint", UNUSED, "--deny", "warnings"]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    // Errors still dominate: the unsat fixture stays exit 2.
    let out = run(&["lint", UNSAT, "--deny", "warnings"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
}

#[test]
fn clean_scenario_exits_zero_even_under_deny_warnings() {
    // Info-level pruning notes never affect the exit status.
    let out = run(&[
        "lint",
        "scenarios/badly_parked.scenic",
        "--deny",
        "warnings",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert!(stdout(&out).contains("info[I201]"), "{}", stdout(&out));
}

#[test]
fn all_bundled_scenarios_lint_clean() {
    for (file, world) in [
        ("scenarios/badly_parked.scenic", "gta"),
        ("scenarios/gta_intersection.scenic", "gta"),
        ("scenarios/gta_oncoming.scenic", "gta"),
        ("scenarios/mars_bottleneck.scenic", "mars"),
        ("scenarios/mars_formation.scenic", "mars"),
        ("scenarios/simplest.scenic", "gta"),
        ("scenarios/two_cars.scenic", "gta"),
    ] {
        let out = run(&["lint", file, "--world", world, "--deny", "warnings"]);
        assert_eq!(
            out.status.code(),
            Some(0),
            "{file} is not lint-clean:\n{}",
            stdout(&out)
        );
    }
}

#[test]
fn gta_intersection_surfaces_the_distance_pruning_opportunity() {
    let out = run(&["lint", "scenarios/gta_intersection.scenic"]);
    let text = stdout(&out);
    assert!(text.contains("info[I203]: pruning-opportunity"), "{text}");
    assert!(text.contains("--max-distance 25"), "{text}");
}

#[test]
fn json_format_reports_codes_spans_and_nullable_fields() {
    let out = run(&["lint", UNSAT, "--format", "json"]);
    assert_eq!(out.status.code(), Some(2));
    let json = stdout(&out);
    assert!(json.trim_start().starts_with('['), "{json}");
    assert!(json.contains("\"code\": \"E101\""), "{json}");
    assert!(
        json.contains("\"span\": {\"line\": 4, \"col\": 1, \"end_line\": 4, \"end_col\": 32}"),
        "{json}"
    );
    // Spanless pruning notes serialize span as null.
    assert!(json.contains("\"span\": null"), "{json}");
    // The E101 object precedes every I2xx object.
    let e = json.find("E101").unwrap();
    let i = json.find("I201").unwrap();
    assert!(e < i, "{json}");
}

#[test]
fn unknown_lint_format_is_rejected() {
    let out = run(&["lint", UNSAT, "--format", "summary"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("unknown lint format"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn unknown_deny_value_is_rejected() {
    let out = run(&["lint", UNSAT, "--deny", "notes"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--deny"), "{}", stderr(&out));
}

#[test]
fn check_runs_the_analyzer_and_fails_on_e101() {
    let out = run(&["check", UNSAT]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    assert!(stderr(&out).contains("error[E101]"), "{}", stderr(&out));
    // Warnings are shown but do not fail `check`.
    let out = run(&["check", UNUSED]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stderr(&out).contains("warning[W001]"), "{}", stderr(&out));
    assert!(stderr(&out).contains(": ok"), "{}", stderr(&out));
}

#[test]
fn parse_errors_render_through_the_unified_pipeline() {
    let path = write_scenario("parse_err.scenic", "ego = Car\nCar offset\n");
    let out = run(&["lint", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("error[E001]: parse-error"), "{text}");
    assert!(text.contains(":2:"), "position missing: {text}");
}

#[test]
fn runtime_errors_render_with_code_and_position() {
    // `Car` is undefined in the bare world: a runtime error, rendered
    // with its stable code and source line.
    let path = write_scenario("undef.scenic", "ego = Car\n");
    let out = run(&["sample", path.to_str().unwrap(), "--world", "bare"]);
    assert_eq!(out.status.code(), Some(1));
    let err = stderr(&out);
    assert!(err.contains("error[E003]: undefined-name"), "{err}");
    assert!(err.contains("`Car` is not defined"), "{err}");
    assert!(err.contains(":1:"), "{err}");
}

#[test]
fn sample_stats_surface_pruner_decisions_as_i201() {
    let out = run(&["sample", "scenarios/two_cars.scenic", "-n", "1", "--stats"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("info[I201]: pruner-disabled"), "{err}");
    // All three §5.2 pruners get a decision line.
    assert_eq!(err.matches("pruning disabled:").count(), 3, "{err}");
}

#[test]
fn lint_accepts_multiple_files_and_reports_the_worst() {
    // One clean file plus one erroring file: the error wins the exit
    // status, and both files' diagnostics are emitted.
    let out = run(&["lint", "scenarios/simplest.scenic", UNSAT]);
    assert_eq!(out.status.code(), Some(2));
    let text = stdout(&out);
    assert!(text.contains("simplest.scenic"), "{text}");
    assert!(text.contains("error[E101]"), "{text}");
}
