//! Semantics of Scenic's geometric operators and specifiers, asserting
//! the concrete geometry of Fig. 6 of the paper.
//!
//! Fig. 6 shows an ego at the origin facing North and an OrientedPoint
//! `P`, illustrating `left of ego`, `back right of ego`,
//! `Point offset by 1 @ 2`, `P offset by 0 @ -2`, `Point beyond P by
//! -2 @ 1`, `Object behind P by 2`, and `apparent heading of P`.

use scenic::prelude::*;

fn sample(source: &str, seed: u64) -> Scene {
    let scenario = compile(source).expect("compiles");
    Sampler::new(&scenario)
        .sample_seeded(seed)
        .expect("samples")
}

fn pos(scene: &Scene, idx: usize) -> [f64; 2] {
    scene.objects[idx].position
}

#[test]
fn offset_by_in_ego_frame() {
    // Fig. 6: `Point offset by 1 @ 2` ≡ `1 @ 2 relative to ego`.
    let scene = sample(
        "ego = Object at 0 @ 0\nObject offset by 1 @ 2, with requireVisible False\n",
        1,
    );
    assert_eq!(pos(&scene, 1), [1.0, 2.0]);
    // With a rotated ego the offset rotates too.
    let scene = sample(
        "ego = Object at 0 @ 0, facing 90 deg\nObject offset by 1 @ 2, with requireVisible False\n",
        1,
    );
    let p = pos(&scene, 1);
    assert!(
        (p[0] - (-2.0)).abs() < 1e-9 && (p[1] - 1.0).abs() < 1e-9,
        "{p:?}"
    );
}

#[test]
fn oriented_point_offset_keeps_heading() {
    // Fig. 6: `P offset by 0 @ -2` yields an OrientedPoint facing the
    // same way as P.
    let scene = sample(
        "ego = Object at 0 @ 0\n\
         p = OrientedPoint at 5 @ 5, facing 45 deg\n\
         q = p offset by 0 @ -2\n\
         Object at q, facing q.heading, with requireVisible False\n",
        1,
    );
    let o = &scene.objects[1];
    assert!((o.heading.to_degrees() - 45.0).abs() < 1e-9);
    // 2m backwards along P's heading: (5, 5) + rotate((0, -2), 45°).
    let expected = [
        5.0 - (-2.0) * (45f64.to_radians()).sin(),
        5.0 + (-2.0) * (45f64.to_radians()).cos(),
    ];
    let p = o.position;
    assert!((p[0] - expected[0]).abs() < 1e-9 && (p[1] - expected[1]).abs() < 1e-9);
}

#[test]
fn beyond_in_line_of_sight_frame() {
    // Fig. 6: `Point beyond P by -2 @ 1` — offset in the coordinate
    // system oriented along the line of sight from ego.
    // Ego at origin, P at (0, 10): line of sight is North, so
    // beyond P by -2 @ 1 = (-2, 11).
    let scene = sample(
        "ego = Object at 0 @ 0\n\
         Object beyond 0 @ 10 by -2 @ 1, with requireVisible False\n",
        1,
    );
    let p = pos(&scene, 1);
    assert!(
        (p[0] - (-2.0)).abs() < 1e-9 && (p[1] - 11.0).abs() < 1e-9,
        "{p:?}"
    );
}

#[test]
fn beyond_with_explicit_from() {
    // `beyond A by O from B`: sight line from B to A.
    // B = (0, 20), A = (0, 10): sight direction South, so `by 0 @ 3`
    // goes 3m further South.
    let scene = sample(
        "ego = Object at 0 @ 0\n\
         Object beyond 0 @ 10 by 0 @ 3 from 0 @ 20, with requireVisible False\n",
        1,
    );
    let p = pos(&scene, 1);
    assert!(p[0].abs() < 1e-9 && (p[1] - 7.0).abs() < 1e-9, "{p:?}");
}

#[test]
fn behind_oriented_point_by_gap() {
    // Fig. 6: `Object behind P by 2` places the object's front edge 2m
    // behind P.
    let scene = sample(
        "ego = Object at 0 @ 0\n\
         p = OrientedPoint at 0 @ 10, facing 0 deg\n\
         Object behind p by 2, with height 4, with requireVisible False\n",
        1,
    );
    // Center = P - (2 + height/2) along P's heading = (0, 10 - 4) = (0, 6).
    let p = pos(&scene, 1);
    assert!(p[0].abs() < 1e-9 && (p[1] - 6.0).abs() < 1e-9, "{p:?}");
}

#[test]
fn apparent_heading_of() {
    // Fig. 6's apparent heading: P's heading relative to the line of
    // sight from ego. P at (0, 10) facing West (90°): line of sight is
    // North (0°), so apparent heading is 90°.
    let scenario = compile(
        "ego = Object at 0 @ 0\n\
         p = OrientedPoint at 0 @ 10, facing 90 deg\n\
         require abs((apparent heading of p) - 90 deg) < 0.001\n",
    )
    .unwrap();
    assert!(scenario.generate_seeded(1).is_ok());
}

#[test]
fn relative_heading_of() {
    let scenario = compile(
        "ego = Object at 0 @ 0, facing 30 deg\n\
         c = Object at 0 @ 10, facing 50 deg\n\
         require abs((relative heading of c) - 20 deg) < 0.001\n",
    )
    .unwrap();
    assert!(scenario.generate_seeded(1).is_ok());
}

#[test]
fn distance_and_angle_operators() {
    let scenario = compile(
        "ego = Object at 0 @ 0\n\
         c = Object at 3 @ 4\n\
         require abs((distance to c) - 5) < 0.001\n\
         require abs((distance from 1 @ 0 to 4 @ 4) - 5) < 0.001\n\
         require abs((angle to 0 @ 10) - 0) < 0.001\n\
         require abs((angle to -10 @ 0) - 90 deg) < 0.001\n",
    )
    .unwrap();
    assert!(scenario.generate_seeded(2).is_ok());
}

#[test]
fn box_corner_operators() {
    // front/back/left/right and corner points of a 2×4 object.
    let scenario = compile(
        "ego = Object at 0 @ 0, with width 2, with height 4\n\
         require abs((distance to front of ego) - 2) < 0.001\n\
         require abs((distance to back of ego) - 2) < 0.001\n\
         require abs((distance to left of ego) - 1) < 0.001\n\
         require abs((distance to front left of ego) - 2.2360679) < 0.001\n\
         require abs((distance to back right of ego) - 2.2360679) < 0.001\n",
    )
    .unwrap();
    assert!(scenario.generate_seeded(3).is_ok());
}

#[test]
fn field_at_and_relative_to() {
    use scenic::core::{Module, NativeValue, World};
    use scenic::geom::{Heading, VectorField};
    use std::sync::Arc;
    let mut world = World::bare();
    world.add_module(
        "lib",
        Module {
            natives: vec![(
                "f".into(),
                NativeValue::Field(Arc::new(VectorField::Constant(Heading::from_degrees(30.0)))),
            )],
            source: None,
        },
    );
    let scenario = scenic::core::compile_with_world(
        "import lib\n\
         ego = Object at 0 @ 0\n\
         require abs((f at 1 @ 1) - 30 deg) < 0.001\n\
         Object at 0 @ 5, facing 15 deg relative to f\n",
        &world,
    )
    .unwrap();
    let scene = scenario.generate_seeded(1).unwrap();
    assert!((scene.objects[1].heading.to_degrees() - 45.0).abs() < 1e-6);
}

#[test]
fn offset_along_heading_and_field() {
    let scene = sample(
        "ego = Object at 0 @ 0\n\
         Object at (0 @ 0) offset along 90 deg by 0 @ 5, with requireVisible False\n",
        1,
    );
    // Offset (0,5) rotated 90° ccw = (-5, 0).
    let p = pos(&scene, 1);
    assert!((p[0] - (-5.0)).abs() < 1e-9 && p[1].abs() < 1e-9, "{p:?}");
}

#[test]
fn can_see_and_is_in() {
    let scenario = compile(
        "ego = Object at 0 @ 0, with viewAngle 90 deg, with viewDistance 20\n\
         require ego can see 0 @ 10\n\
         require not (ego can see 0 @ -10)\n\
         require not (ego can see 0 @ 30)\n\
         require (3 @ 4) is in workspace\n",
    )
    .unwrap();
    assert!(scenario.generate_seeded(1).is_ok());
}

#[test]
fn visible_region_sampling() {
    // The `visible` specifier samples uniformly in the ego view region.
    let scenario = compile(
        "ego = Object at 0 @ 0, with viewAngle 60 deg, with viewDistance 25\n\
         Object visible, with allowCollisions True\n",
    )
    .unwrap();
    for seed in 0..20 {
        let scene = scenario.generate_seeded(seed);
        let Ok(scene) = scene else { continue };
        let p = scene.objects[1].position_vec();
        assert!(p.norm() <= 25.0 + 1e-9);
        let bearing = scenic::geom::Heading::of_vector(p);
        assert!(bearing.radians().abs() <= 30f64.to_radians() + 1e-9);
    }
}

#[test]
fn follow_field_euler() {
    use scenic::core::{Module, NativeValue, World};
    use scenic::geom::{Heading, VectorField};
    use std::sync::Arc;
    let mut world = World::bare();
    world.add_module(
        "lib",
        Module {
            natives: vec![(
                "f".into(),
                NativeValue::Field(Arc::new(VectorField::Constant(Heading::from_degrees(
                    -90.0,
                )))),
            )],
            source: None,
        },
    );
    // Following an East-pointing field for 8m lands at (8, 0).
    let scenario = scenic::core::compile_with_world(
        "import lib\n\
         ego = Object at 0 @ 0\n\
         p = follow f from 0 @ 0 for 8\n\
         Object at p, facing p.heading, with requireVisible False, with allowCollisions True\n",
        &world,
    )
    .unwrap();
    let scene = scenario.generate_seeded(1).unwrap();
    let p = scene.objects[1].position;
    assert!((p[0] - 8.0).abs() < 1e-9 && p[1].abs() < 1e-9, "{p:?}");
    assert!((scene.objects[1].heading.to_degrees() + 90.0).abs() < 1e-9);
}
