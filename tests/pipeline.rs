//! End-to-end pipeline tests: Scenic source → scenes → images →
//! detector → metrics (the full tool flow of Fig. 2).

use scenic::detect::{Dataset, Detector};
use scenic::gta::{scenarios, MapConfig, World};
use scenic::prelude::*;

fn world() -> World {
    World::generate(MapConfig::default())
}

#[test]
fn scenario_to_metrics_end_to_end() {
    let w = world();
    let train = Dataset::from_source(scenarios::TWO_CARS, w.core(), 120, 1, 4).unwrap();
    let test = Dataset::from_source(scenarios::TWO_CARS, w.core(), 40, 2, 1).unwrap();
    let model = Detector::train(&train.images);
    let metrics = model.evaluate(&test.images, 3);
    assert!(metrics.precision > 60.0, "precision {}", metrics.precision);
    assert!(metrics.recall > 60.0, "recall {}", metrics.recall);
    assert_eq!(metrics.images, 40);
}

#[test]
fn scene_json_is_simulator_interface() {
    // The JSON a simulator plugin would consume: params + objects with
    // positions, headings, extents, and library properties.
    let w = world();
    let scenario = compile_with_world(scenarios::SIMPLEST, w.core()).unwrap();
    let scene = Sampler::new(&scenario).sample_seeded(4).unwrap();
    let json = scene.to_json();
    let value: serde_json::Value = serde_json::from_str(&json).unwrap();
    let objects = value["objects"].as_array().unwrap();
    assert_eq!(objects.len(), 2);
    for obj in objects {
        assert!(obj["position"].as_array().unwrap().len() == 2);
        assert!(obj["properties"]["model"]["name"].is_string());
        assert!(obj["properties"]["color"].is_array());
    }
}

#[test]
fn every_gallery_scenario_generates_scenes() {
    let w = world();
    for (name, src) in [
        ("A.2", scenarios::SIMPLEST),
        ("A.3", scenarios::ONE_CAR),
        ("A.4", scenarios::BADLY_PARKED),
        ("A.5", scenarios::ONCOMING),
        ("A.7", scenarios::TWO_CARS),
        ("A.8", scenarios::TWO_OVERLAPPING),
        ("A.9", scenarios::FOUR_CARS_BAD_CONDITIONS),
        ("A.10", scenarios::PLATOON_DAYTIME),
        ("A.11", scenarios::BUMPER_TO_BUMPER),
        ("parked row (user-defined specifier)", scenarios::PARKED_ROW),
    ] {
        let scenario = compile_with_world(src, w.core())
            .unwrap_or_else(|e| panic!("{name} failed to compile: {e}"));
        let mut sampler =
            Sampler::new(&scenario)
                .with_seed(7)
                .with_config(scenic::core::SamplerConfig {
                    max_iterations: 50_000,
                });
        let scene = sampler
            .sample()
            .unwrap_or_else(|e| panic!("{name} failed to sample: {e}"));
        assert!(scene.objects.len() >= 2, "{name} produced too few objects");
        // The paper's performance envelope: a few hundred iterations at
        // most for reasonable scenarios.
        assert!(
            sampler.stats().iterations_per_scene() < 2000.0,
            "{name} took {} iterations",
            sampler.stats().iterations_per_scene()
        );
    }
}

#[test]
fn scene_distribution_is_conditioned_by_requirements() {
    // The oncoming scenario requires `car2 can see ego`; every accepted
    // scene satisfies it even though most raw draws do not.
    let w = world();
    let scenario = compile_with_world(scenarios::ONCOMING, w.core()).unwrap();
    let mut sampler = Sampler::new(&scenario).with_seed(10);
    for _ in 0..5 {
        let scene = sampler.sample().unwrap();
        let ego = scene.ego();
        let car2 = scene.non_ego_objects().next().unwrap();
        let viewer = scenic::geom::visibility::Viewer::oriented(
            car2.position_vec(),
            scenic::geom::Heading(car2.heading),
            30.0,
            30f64.to_radians(),
        );
        assert!(viewer.can_see_box(&ego.bounding_box()));
    }
    assert!(sampler.stats().requirement_rejections > 0);
}

#[test]
fn rendered_images_respect_scene_geometry() {
    let w = world();
    let scenario = compile_with_world(scenarios::TWO_OVERLAPPING, w.core()).unwrap();
    let mut sampler = Sampler::new(&scenario).with_seed(11);
    let mut overlapping_seen = 0;
    for _ in 0..10 {
        let scene = sampler.sample().unwrap();
        let image = scenic::sim::render_scene(&scene);
        for car in &image.cars {
            assert!(car.depth > 0.0 && car.depth < 120.0);
            assert!(car.bbox.area() > 0.0);
        }
        if image.cars.len() == 2 && image.cars[1].occlusion > 0.1 {
            overlapping_seen += 1;
        }
    }
    assert!(
        overlapping_seen >= 5,
        "only {overlapping_seen}/10 overlap images actually overlapped"
    );
}

#[test]
fn pruned_and_unpruned_scenes_agree_on_requirements() {
    // Pruning must not change which scenes are acceptable — every
    // pruned-world scene satisfies the same requirements.
    use scenic::core::prune::PruneParams;
    let w = world();
    let pruned = w
        .pruned(&PruneParams {
            min_radius: 1.0,
            ..PruneParams::default()
        })
        .unwrap();
    let scenario = compile_with_world(scenarios::TWO_CARS, &pruned).unwrap();
    let mut sampler = Sampler::new(&scenario).with_seed(12);
    for _ in 0..5 {
        let scene = sampler.sample().unwrap();
        // All objects on the map, none colliding.
        for (i, a) in scene.objects.iter().enumerate() {
            for b in scene.objects.iter().skip(i + 1) {
                assert!(!a.bounding_box().intersects(&b.bounding_box()));
            }
        }
    }
}

#[test]
fn mars_pipeline() {
    let world = scenic::mars::world();
    let scenario = compile_with_world(scenic::mars::BOTTLENECK, &world).unwrap();
    let scene = Sampler::new(&scenario).sample_seeded(13).unwrap();
    let plan = scenic::mars::plan(&scene, scenic::mars::WORKSPACE_HALF, true);
    assert!(plan.is_some(), "planner found no route");
}
