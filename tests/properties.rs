//! Property-based tests (proptest) on the core data structures and the
//! language invariants.

use proptest::prelude::*;
use scenic::geom::{Heading, OrientedBox, Polygon, Region, Vec2};
use scenic::prelude::*;

proptest! {
    // ---------------- geometry ----------------

    #[test]
    fn rotation_preserves_norm(x in -100.0..100.0f64, y in -100.0..100.0f64, theta in -10.0..10.0f64) {
        let v = Vec2::new(x, y);
        prop_assert!((v.rotated(theta).norm() - v.norm()).abs() < 1e-6);
    }

    #[test]
    fn rotation_round_trip(x in -100.0..100.0f64, y in -100.0..100.0f64, theta in -6.0..6.0f64) {
        let v = Vec2::new(x, y);
        let back = v.rotated(theta).rotated(-theta);
        prop_assert!(back.approx_eq(v, 1e-6));
    }

    #[test]
    fn heading_of_direction_round_trips(theta in -3.1..3.1f64) {
        let h = Heading(theta);
        prop_assert!(Heading::of_vector(h.direction()).approx_eq(h, 1e-6));
    }

    #[test]
    fn normalized_heading_in_range(theta in -100.0..100.0f64) {
        let n = Heading(theta).normalized().radians();
        prop_assert!(n > -std::f64::consts::PI - 1e-9 && n <= std::f64::consts::PI + 1e-9);
    }

    #[test]
    fn polygon_sampling_stays_inside(
        cx in -50.0..50.0f64,
        cy in -50.0..50.0f64,
        w in 1.0..40.0f64,
        h in 1.0..40.0f64,
        seed in 0u64..1000,
    ) {
        let poly = Polygon::rectangle(Vec2::new(cx, cy), w, h);
        let region = Region::from(poly.clone());
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        for _ in 0..16 {
            let p = region.sample(&mut rng).unwrap();
            prop_assert!(poly.contains(p), "{p} escaped {poly:?}");
        }
    }

    #[test]
    fn box_contains_its_center_and_corners(
        cx in -50.0..50.0f64,
        cy in -50.0..50.0f64,
        heading in -3.0..3.0f64,
        w in 0.5..10.0f64,
        h in 0.5..10.0f64,
    ) {
        let b = OrientedBox::new(Vec2::new(cx, cy), Heading(heading), w, h);
        prop_assert!(b.contains(b.center));
        for corner in b.corners() {
            prop_assert!(b.contains(corner));
        }
        prop_assert!(b.intersects(&b));
    }

    #[test]
    fn box_intersection_is_symmetric(
        ax in -10.0..10.0f64, ay in -10.0..10.0f64, ah in -3.0..3.0f64,
        bx in -10.0..10.0f64, by in -10.0..10.0f64, bh in -3.0..3.0f64,
    ) {
        let a = OrientedBox::new(Vec2::new(ax, ay), Heading(ah), 2.0, 4.0);
        let b = OrientedBox::new(Vec2::new(bx, by), Heading(bh), 2.0, 4.0);
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    #[test]
    fn dilation_contains_original(
        cx in -20.0..20.0f64,
        cy in -20.0..20.0f64,
        w in 1.0..20.0f64,
        h in 1.0..20.0f64,
        r in 0.1..5.0f64,
    ) {
        let poly = Polygon::rectangle(Vec2::new(cx, cy), w, h);
        let dilated = scenic::geom::clip::dilate_convex(&poly, r);
        for &v in poly.vertices() {
            prop_assert!(dilated.contains(v));
        }
        prop_assert!(dilated.area() >= poly.area());
    }

    #[test]
    fn erosion_shrinks_and_respects_margin(
        w in 6.0..40.0f64,
        h in 6.0..40.0f64,
        margin in 0.5..2.5f64,
        seed in 0u64..500,
    ) {
        let region = Region::rectangle(Vec2::ZERO, w, h);
        let eroded = region.eroded(margin);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        for _ in 0..8 {
            if let Some(p) = eroded.sample(&mut rng) {
                prop_assert!(p.x.abs() <= w / 2.0 - margin + 1e-6);
                prop_assert!(p.y.abs() <= h / 2.0 - margin + 1e-6);
            }
        }
    }

    // ---------------- language / runtime ----------------

    #[test]
    fn interval_samples_in_bounds(lo in -100.0..100.0f64, delta in 0.1..50.0f64, seed in 0u64..200) {
        let hi = lo + delta;
        let src = format!(
            "ego = Object at 0 @ 0\nObject at 0 @ 20, with x ({lo}, {hi})\n"
        );
        let scenario = compile(&src).unwrap();
        let scene = scenario.generate_seeded(seed).unwrap();
        let x = scene.objects[1].property("x").unwrap().as_number().unwrap();
        prop_assert!((lo..hi).contains(&x));
    }

    #[test]
    fn at_specifier_is_exact(x in -500.0..500.0f64, y in -500.0..500.0f64) {
        let src = format!("ego = Object at {x} @ {y}\n");
        let scenario = compile(&src).unwrap();
        let scene = scenario.generate_seeded(0).unwrap();
        prop_assert!((scene.objects[0].position[0] - x).abs() < 1e-9);
        prop_assert!((scene.objects[0].position[1] - y).abs() < 1e-9);
    }

    #[test]
    fn facing_specifier_sets_heading(deg in -360.0..360.0f64) {
        let src = format!("ego = Object at 0 @ 0, facing {deg} deg\n");
        let scenario = compile(&src).unwrap();
        let scene = scenario.generate_seeded(0).unwrap();
        prop_assert!((scene.objects[0].heading - deg.to_radians()).abs() < 1e-9);
    }

    #[test]
    fn specifier_order_is_irrelevant(
        x in -50i32..50,
        y in -50i32..50,
        deg in -179i32..179,
        w in 1u32..6,
        h in 1u32..6,
        perm in 0usize..24,
    ) {
        // §3: specifiers "do not have an order" — any permutation of a
        // deterministic specifier list yields the same object.
        let mut specs = vec![
            format!("at {x} @ {y}"),
            format!("facing {deg} deg"),
            format!("with width {w}"),
            format!("with height {h}"),
        ];
        // Decode `perm` as a Lehmer code to pick one of the 4! orders.
        let mut shuffled = Vec::new();
        let mut k = perm;
        for radix in (1..=4).rev() {
            shuffled.push(specs.remove(k % radix));
            k /= radix;
        }
        let canonical = format!("ego = Object at {x} @ {y}, facing {deg} deg, \
                                 with width {w}, with height {h}\n");
        let permuted = format!("ego = Object {}\n", shuffled.join(", "));
        let a = compile(&canonical).unwrap().generate_seeded(1).unwrap();
        let b = compile(&permuted).unwrap().generate_seeded(1).unwrap();
        prop_assert_eq!(a.objects[0].position, b.objects[0].position);
        prop_assert_eq!(a.objects[0].heading, b.objects[0].heading);
        prop_assert_eq!(a.objects[0].width, b.objects[0].width);
        prop_assert_eq!(a.objects[0].height, b.objects[0].height);
    }

    #[test]
    fn user_specifier_order_is_irrelevant(gap in 0.1..5.0f64, w in 1u32..8, swap in proptest::bool::ANY) {
        // The same holds with a user-defined specifier in the list: its
        // declared `requires width` dependency is honored regardless of
        // where the `with width` appears.
        let def = "specifier rightEdge(gap) specifies position requires width:\n\
                   \x20   return {'position': (self.width / 2 + gap) @ 0}\n\
                   ego = Object at -20 @ 0, with requireVisible False\n";
        let tail = if swap {
            format!("Object using rightEdge({gap}), with width {w}, with requireVisible False\n")
        } else {
            format!("Object with width {w}, with requireVisible False, using rightEdge({gap})\n")
        };
        let scene = compile(&format!("{def}{tail}"))
            .unwrap()
            .generate_seeded(2)
            .unwrap();
        let expected = f64::from(w) / 2.0 + gap;
        prop_assert!((scene.objects[1].position[0] - expected).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_matches_rust(a in -1000.0..1000.0f64, b in 0.5..1000.0f64) {
        let src = format!(
            "ego = Object at 0 @ 0\n\
             require abs(({a} + {b}) - {}) < 0.0001\n\
             require abs(({a} * {b}) - {}) < 0.0001\n\
             require abs(({a} / {b}) - {}) < 0.0001\n",
            a + b,
            a * b,
            a / b,
        );
        let scenario = compile(&src).unwrap();
        prop_assert!(scenario.generate_seeded(0).is_ok());
    }

    #[test]
    fn generated_scenes_satisfy_default_requirements(seed in 0u64..40) {
        let scenario = compile(
            "ego = Object at 0 @ 0\n\
             Object at (2, 12) @ (2, 12)\n\
             Object at (-12, -2) @ (2, 12)\n",
        )
        .unwrap();
        let mut sampler = Sampler::new(&scenario).with_seed(seed);
        let Ok(scene) = sampler.sample() else {
            // Bounded budget may fail for unlucky seeds; that's still a
            // valid rejection-sampler outcome.
            return Ok(());
        };
        for (i, a) in scene.objects.iter().enumerate() {
            for b in scene.objects.iter().skip(i + 1) {
                prop_assert!(!a.bounding_box().intersects(&b.bounding_box()));
            }
        }
    }

    #[test]
    fn pixel_box_iou_bounds(
        ax in 0.0..500.0f64, ay in 0.0..500.0f64, aw in 1.0..300.0f64, ah in 1.0..300.0f64,
        bx in 0.0..500.0f64, by in 0.0..500.0f64, bw in 1.0..300.0f64, bh in 1.0..300.0f64,
    ) {
        use scenic::sim::PixelBox;
        let a = PixelBox::new(ax, ay, ax + aw, ay + ah);
        let b = PixelBox::new(bx, by, bx + bw, by + bh);
        let iou = a.iou(&b);
        prop_assert!((0.0..=1.0).contains(&iou));
        prop_assert!((a.iou(&b) - b.iou(&a)).abs() < 1e-12);
        prop_assert!((a.iou(&a) - 1.0).abs() < 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn print_parse_round_trip(
        x in -100i32..100,
        y in -100i32..100,
        deg in -180i32..180,
        gap in 1u32..8,
    ) {
        // parse → print → parse is the identity on the AST.
        let src = format!(
            "ego = Object at {x} @ {y}, facing {deg} deg\n\
             c = Object behind ego by {gap}, with requireVisible False\n\
             require ego can see 0 @ 10 or not (c is in workspace)\n"
        );
        let ast = scenic::lang::parse(&src).unwrap();
        let printed = scenic::lang::print_program(&ast);
        let reparsed = scenic::lang::parse(&printed).unwrap();
        prop_assert_eq!(ast, reparsed);
    }

    #[test]
    fn parser_accepts_generated_object_definitions(
        x in -100i32..100,
        y in -100i32..100,
        deg in -180i32..180,
        width in 1u32..10,
    ) {
        let src = format!(
            "ego = Object at {x} @ {y}, facing {deg} deg, with width {width}\nObject behind ego by 2\n"
        );
        let program = scenic::lang::parse(&src).unwrap();
        prop_assert_eq!(program.statements.len(), 2);
    }

    #[test]
    fn parser_never_panics_on_garbage(src in "[ -~\n\t]{0,120}") {
        // Arbitrary printable soup must produce `Ok` or a ParseError,
        // never a panic.
        let _ = scenic::lang::parse(&src);
    }

    #[test]
    fn lexer_never_panics_on_any_bytes(bytes in proptest::collection::vec(proptest::num::u8::ANY, 0..80)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let _ = scenic::lang::lex(&src);
    }

    #[test]
    fn sampling_is_deterministic_per_seed(seed in 0u64..100) {
        let scenario = compile(
            "ego = Object at 0 @ 0\nObject at (5, 15) @ (5, 15), facing (0, 360) deg\n",
        )
        .unwrap();
        let a = scenario.generate_seeded(seed);
        let b = scenario.generate_seeded(seed);
        match (a, b) {
            (Ok(sa), Ok(sb)) => {
                prop_assert_eq!(sa.objects[1].position, sb.objects[1].position);
                prop_assert_eq!(sa.objects[1].heading, sb.objects[1].heading);
            }
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "determinism violated"),
        }
    }
}
