//! Property tests pinning the §5.2 pruning semantics.
//!
//! The contract under test (see `docs/ARCHITECTURE.md`, "Pruning
//! layer"): guard-mode pruning draws the exact unpruned candidate
//! stream and only abandons candidates that could never be accepted, so
//!
//! - a scene accepted unpruned at seed `s` is accepted pruned at seed
//!   `s` and is byte-identical;
//! - pruned regions only ever shrink (area never grows, pieces stay
//!   inside the original cells);
//! - the per-pruner counters in `SamplerStats` merge associatively and
//!   are invariant in the worker count.

use scenic::core::prune::{PruneParams, Pruner};
use scenic::core::sampler::{Sampler, SamplerStats};
use scenic::core::{compile_with_world, Module, NativeValue, ScenarioCache, World};
use scenic::geom::field::FieldCell;
use scenic::geom::{Heading, Polygon, Region, Vec2, VectorField};
use std::sync::Arc;

/// A bounded road world where both the containment and the orientation
/// guards have something to do: a northbound lane, an opposing lane
/// 12 m away, and a remote northbound lane at x = 500, inside a
/// workspace that hugs the lanes' y-extent.
fn lane_cells() -> Vec<FieldCell> {
    vec![
        FieldCell {
            polygon: Polygon::rectangle(Vec2::new(0.0, 0.0), 6.0, 200.0),
            heading: Heading::NORTH,
        },
        FieldCell {
            polygon: Polygon::rectangle(Vec2::new(12.0, 0.0), 6.0, 200.0),
            heading: Heading::from_degrees(180.0),
        },
        FieldCell {
            polygon: Polygon::rectangle(Vec2::new(500.0, 0.0), 6.0, 200.0),
            heading: Heading::NORTH,
        },
    ]
}

fn lanes_world() -> World {
    let cells = lane_cells();
    let field = VectorField::polygonal(cells.clone(), Heading::NORTH);
    let road =
        Region::polygons_with_orientation(cells.iter().map(|c| c.polygon.clone()).collect(), field);
    // Workspace y-extent equals the lanes' (±100), so draws near the
    // lane ends are within containment-margin reach of the boundary.
    let mut world = World::with_workspace(Region::rectangle(Vec2::new(250.0, 0.0), 540.0, 200.0));
    world.add_auto_module(
        "lib",
        Module {
            natives: vec![("road".into(), NativeValue::Region(Arc::new(road)))],
            source: Some(
                "class Car:\n    position: Point on road\n    heading: 0\n    width: 8\n    height: 8\n    requireVisible: False\n    allowCollisions: True\n"
                    .into(),
            ),
        },
    );
    world
}

const THREE_CARS: &str = "ego = Car\nCar\nCar\n";

#[test]
fn derived_params_bound_the_car_in_radius() {
    let scenario = compile_with_world(THREE_CARS, &lanes_world()).unwrap();
    let params = scenario.derived_prune_params();
    // Every physical class bounds the margin: the prelude's `Object`
    // (1×1, in-radius 0.5) binds, not the 8×8 Car.
    assert!(
        (params.min_radius - 0.5).abs() < 1e-9,
        "{}",
        params.min_radius
    );
    assert!(!scenario.prune_plan().is_empty());
}

#[test]
fn accepted_unpruned_is_accepted_pruned_and_byte_identical() {
    let world = lanes_world();
    let scenario = compile_with_world(THREE_CARS, &world).unwrap();
    let mut plain = Sampler::new(&scenario);
    let mut pruned = Sampler::new(&scenario).with_pruning();
    let mut accepted = 0;
    for seed in 0..40 {
        match (plain.sample_seeded(seed), pruned.sample_seeded(seed)) {
            (Ok(a), Ok(b)) => {
                accepted += 1;
                assert_eq!(a.to_json(), b.to_json(), "seed {seed} diverged");
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "seed {seed} errors diverged"),
            (a, b) => panic!("seed {seed}: unpruned {a:?} vs pruned {b:?}"),
        }
    }
    assert!(accepted > 30, "fixture too hard: {accepted}/40 accepted");
    // Identical candidate streams: same number of candidates drawn...
    assert_eq!(plain.stats().iterations, pruned.stats().iterations);
    assert_eq!(plain.stats().scenes, pruned.stats().scenes);
    // ...but the guard caught some of the doomed ones early, and every
    // guard catch replaced a containment rejection one-for-one (the
    // derived margin equals the objects' in-radius exactly).
    let caught = pruned.stats().prune_rejections();
    assert!(caught > 0, "containment guard never fired");
    assert_eq!(caught, pruned.stats().prune_containment_rejections);
    assert_eq!(
        plain.stats().containment_rejections,
        pruned.stats().containment_rejections + caught,
    );
}

#[test]
fn orientation_guard_fires_with_explicit_params() {
    // An oncoming-style relative-heading interval: the remote lane has
    // no opposing cell within 50 m, so a third of the road area — and
    // therefore roughly a third of the draws — is guard-rejected.
    let world = lanes_world();
    let scenario = compile_with_world(THREE_CARS, &world).unwrap();
    let pi = std::f64::consts::PI;
    let params = PruneParams {
        min_radius: 0.0,
        relative_heading: Some((pi - 0.2, pi + 0.2)),
        max_distance: 50.0,
        heading_tolerance: 0.0,
        min_width: None,
    };
    let mut sampler = Sampler::new(&scenario)
        .with_seed(11)
        .with_prune_params(&params);
    let plan = sampler.prune_plan().expect("plan built").clone();
    assert!(plan
        .guards
        .iter()
        .any(|g| g.pruners().any(|p| p == Pruner::Orientation)));
    sampler.sample_batch(10, 2).unwrap();
    let stats = sampler.stats();
    assert!(
        stats.prune_orientation_rejections > 0,
        "orientation guard never fired: {stats:?}"
    );
    assert_eq!(
        stats.full_iterations(),
        stats.iterations - stats.prune_rejections()
    );
    assert!(stats.full_iterations() >= stats.scenes);
}

#[test]
fn pruned_pieces_shrink_and_stay_inside_the_cells() {
    use scenic::core::prune::prune_stages;
    let cells = lane_cells();
    let pi = std::f64::consts::PI;
    for (heading, width) in [
        (Some((pi - 0.2, pi + 0.2)), None),
        (Some((-0.3, 0.3)), Some(10.0)),
        (None, Some(10.0)),
        (None, Some(4.0)),
    ] {
        let params = PruneParams {
            min_radius: 0.0,
            relative_heading: heading,
            max_distance: 50.0,
            heading_tolerance: 0.1,
            min_width: width,
        };
        let stages = prune_stages(&cells, &params);
        assert!(!stages.is_empty());
        let mut previous = cells.iter().map(|c| c.polygon.area()).sum::<f64>();
        for stage in &stages {
            // Area never grows across stages.
            assert!(
                stage.effect.area_before <= previous + 1e-6,
                "{:?}: {} > {previous}",
                stage.pruner,
                stage.effect.area_before
            );
            assert!(stage.effect.area_after <= stage.effect.area_before + 1e-6);
            previous = stage.effect.area_after;
            // Every surviving piece sits inside some original cell.
            for poly in &stage.polygons {
                let c = poly.centroid();
                assert!(
                    cells.iter().any(|cell| cell.polygon.contains(c)),
                    "piece escaped the cells: centroid {c}"
                );
            }
        }
    }
}

#[test]
fn per_pruner_counters_merge_associatively_and_jobs_invariantly() {
    let world = lanes_world();
    let scenario = compile_with_world(THREE_CARS, &world).unwrap();
    let reports: Vec<_> = [1usize, 4]
        .iter()
        .map(|&jobs| {
            let mut sampler = Sampler::new(&scenario).with_seed(5).with_pruning();
            sampler.sample_batch_report(12, jobs).unwrap()
        })
        .collect();
    // Worker count changes nothing: per-scene stats and totals match.
    assert_eq!(reports[0].per_scene, reports[1].per_scene);
    assert_eq!(reports[0].total_stats(), reports[1].total_stats());

    // Counter merging is associative: any grouping of the per-scene
    // stats reduces to the same total.
    let per_scene = &reports[0].per_scene;
    let merge = |a: &SamplerStats, b: &SamplerStats| {
        let mut out = *a;
        out.merge(b);
        out
    };
    let left = per_scene[2..]
        .iter()
        .fold(merge(&per_scene[0], &per_scene[1]), |acc, s| merge(&acc, s));
    let right = per_scene[..per_scene.len() - 1]
        .iter()
        .rev()
        .fold(per_scene[per_scene.len() - 1], |acc, s| {
            merge(&s.clone(), &acc)
        });
    assert_eq!(left, right);
    assert_eq!(left, reports[0].total_stats());
}

#[test]
fn prune_plan_is_cached_and_shared_by_cache_hits() {
    let world = lanes_world();
    let cache = ScenarioCache::new();
    let a = cache.get_or_compile("lanes", THREE_CARS, &world).unwrap();
    let plan_a = a.prune_plan();
    let b = cache.get_or_compile("lanes", THREE_CARS, &world).unwrap();
    // Cache hit: same compiled scenario, same (not re-built) plan.
    assert!(Arc::ptr_eq(&a, &b));
    assert!(Arc::ptr_eq(&plan_a, &b.prune_plan()));
    // Clones (as handed to batch workers) share the plan too.
    let c = (*a).clone();
    assert!(Arc::ptr_eq(&plan_a, &c.prune_plan()));
}
