//! Statistical tests of the probabilistic semantics (§5.1 / Appendix B):
//! the language's distributions, requirement conditioning, soft
//! requirements, mutation noise, and per-instance default evaluation,
//! checked against their closed-form expectations over many samples.
//!
//! Tolerances are wide enough (±3–4 standard errors) that the tests are
//! deterministic in practice for the fixed seeds used.

use scenic::core::sampler::Sampler;
use scenic::prelude::*;

/// Samples `n` scenes and extracts a statistic per scene.
fn collect(source: &str, n: usize, f: impl Fn(&Scene) -> f64) -> Vec<f64> {
    let scenario = compile(source).expect("compile");
    let mut sampler = Sampler::new(&scenario).with_seed(0xC0FFEE);
    (0..n)
        .map(|_| f(&sampler.sample().expect("sample")))
        .collect()
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn std_dev(xs: &[f64]) -> f64 {
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Reads the x coordinate of the ego (used as the carrier of a sampled
/// scalar in most scenarios below).
fn ego_x(scene: &Scene) -> f64 {
    scene.ego().position[0]
}

// ---------------------------------------------------------------------
// Base distributions (Table 1)
// ---------------------------------------------------------------------

#[test]
fn uniform_interval_moments() {
    // (2, 6): mean 4, variance (6-2)^2/12 = 4/3.
    let xs = collect("ego = Object at (2, 6) @ 0\n", 2000, ego_x);
    assert!((mean(&xs) - 4.0).abs() < 0.1, "mean {}", mean(&xs));
    let sd = std_dev(&xs);
    assert!((sd - (4.0f64 / 3.0).sqrt()).abs() < 0.08, "sd {sd}");
    assert!(xs.iter().all(|&x| (2.0..=6.0).contains(&x)));
}

#[test]
fn normal_distribution_moments() {
    let xs = collect("ego = Object at Normal(10, 2) @ 0\n", 2000, ego_x);
    assert!((mean(&xs) - 10.0).abs() < 0.2, "mean {}", mean(&xs));
    assert!((std_dev(&xs) - 2.0).abs() < 0.15, "sd {}", std_dev(&xs));
}

#[test]
fn uniform_over_values_is_equally_likely() {
    let xs = collect("ego = Object at Uniform(1, 2, 3) @ 0\n", 3000, ego_x);
    for v in [1.0, 2.0, 3.0] {
        let frac = xs.iter().filter(|&&x| x == v).count() as f64 / xs.len() as f64;
        assert!((frac - 1.0 / 3.0).abs() < 0.04, "P({v}) = {frac}");
    }
}

#[test]
fn truncated_normal_stays_in_window_with_normal_shape() {
    let xs = collect(
        "ego = Object at TruncatedNormal(10, 4, 8, 12) @ 0\n",
        2000,
        ego_x,
    );
    assert!(xs.iter().all(|&x| (8.0..=12.0).contains(&x)));
    // Symmetric window around the mean keeps the mean.
    assert!((mean(&xs) - 10.0).abs() < 0.15, "mean {}", mean(&xs));
    // Truncation shrinks the spread well below the parent σ = 4.
    assert!(std_dev(&xs) < 1.6, "sd {}", std_dev(&xs));
}

#[test]
fn truncated_normal_resamples_within_window() {
    let scenario =
        compile("d = TruncatedNormal(0, 5, -1, 1)\nego = Object at d @ resample(d)\n").unwrap();
    let mut sampler = Sampler::new(&scenario).with_seed(17);
    for _ in 0..200 {
        let p = sampler.sample().unwrap().ego().position;
        assert!(p[0].abs() <= 1.0 && p[1].abs() <= 1.0, "{p:?}");
    }
}

#[test]
fn truncated_normal_rejects_inverted_bounds() {
    let scenario = compile("ego = Object at TruncatedNormal(0, 1, 2, -2) @ 0\n").unwrap();
    let err = scenario.generate_seeded(0).unwrap_err();
    assert!(
        err.to_string().contains("low <= high"),
        "wrong error: {err}"
    );
}

#[test]
fn discrete_weights_are_respected() {
    // Weights 1:3 → probabilities 0.25 / 0.75.
    let xs = collect("ego = Object at Discrete({0: 1, 10: 3}) @ 0\n", 3000, ego_x);
    let frac10 = xs.iter().filter(|&&x| x == 10.0).count() as f64 / xs.len() as f64;
    assert!((frac10 - 0.75).abs() < 0.04, "P(10) = {frac10}");
}

#[test]
fn sampling_once_per_evaluation_diagonal() {
    // §4.2's example: `x = (0, 1); y = x @ x` puts y on the *diagonal*
    // of the unit box, not uniformly inside it.
    let scenario = compile("x = (0, 1)\nego = Object at x @ x\n").unwrap();
    let mut sampler = Sampler::new(&scenario).with_seed(7);
    for _ in 0..200 {
        let scene = sampler.sample().unwrap();
        let p = scene.ego().position;
        assert!(
            (p[0] - p[1]).abs() < 1e-12,
            "({}, {}) is off the diagonal",
            p[0],
            p[1]
        );
    }
}

#[test]
fn resample_draws_independently() {
    // §4.2: `resample(D)` returns an independent draw from D, so the
    // two coordinates decorrelate (correlation ≈ 0, not 1).
    let scenario = compile("x = (0, 1)\nego = Object at x @ resample(x)\n").unwrap();
    let mut sampler = Sampler::new(&scenario).with_seed(7);
    let pts: Vec<[f64; 2]> = (0..1500)
        .map(|_| sampler.sample().unwrap().ego().position)
        .collect();
    let xs: Vec<f64> = pts.iter().map(|p| p[0]).collect();
    let ys: Vec<f64> = pts.iter().map(|p| p[1]).collect();
    let (mx, my) = (mean(&xs), mean(&ys));
    let cov = pts.iter().map(|p| (p[0] - mx) * (p[1] - my)).sum::<f64>() / pts.len() as f64;
    let corr = cov / (std_dev(&xs) * std_dev(&ys));
    assert!(corr.abs() < 0.1, "correlation {corr}");
    assert!(pts.iter().any(|p| (p[0] - p[1]).abs() > 0.2));
}

#[test]
fn resample_conditions_on_evaluated_parameters() {
    // Footnote 2: the distribution's parameters are *not* resampled.
    // Here the interval's endpoints are themselves random, but fixed at
    // evaluation; resampling must stay within the same realized
    // interval of width 1.
    let scenario =
        compile("lo = Uniform(0, 100)\nd = (lo, lo + 1)\nego = Object at d @ resample(d)\n")
            .unwrap();
    let mut sampler = Sampler::new(&scenario).with_seed(21);
    for _ in 0..300 {
        let p = sampler.sample().unwrap().ego().position;
        assert!(
            (p[0] - p[1]).abs() <= 1.0,
            "draws {} and {} come from different realized intervals",
            p[0],
            p[1]
        );
    }
}

// ---------------------------------------------------------------------
// Requirements (hard and soft)
// ---------------------------------------------------------------------

#[test]
fn hard_requirement_conditions_the_distribution() {
    // §5.1's example: x = (0, 1) with `require x > 0.5` yields a
    // uniform distribution on (0.5, 1) — mean 0.75.
    let xs = collect(
        "x = (0, 1)\nego = Object at x @ 0\nrequire x > 0.5\n",
        1500,
        ego_x,
    );
    assert!(xs.iter().all(|&x| x > 0.5));
    assert!((mean(&xs) - 0.75).abs() < 0.02, "mean {}", mean(&xs));
}

#[test]
fn soft_requirement_meets_its_probability_bound() {
    // Condition has prior probability 0.5; require[0.6] must raise it
    // to q/(q + (1-q)(1-p)) = 0.5/0.7 ≈ 0.714 ≥ 0.6.
    let xs = collect(
        "x = (0, 1)\nego = Object at x @ 0\nrequire[0.6] x > 0.5\n",
        3000,
        ego_x,
    );
    let frac = xs.iter().filter(|&&x| x > 0.5).count() as f64 / xs.len() as f64;
    assert!(frac >= 0.6, "soft requirement violated: {frac}");
    assert!((frac - 5.0 / 7.0).abs() < 0.04, "conditioned P = {frac}");
}

#[test]
fn soft_requirement_with_probability_one_is_hard() {
    let xs = collect(
        "x = (0, 1)\nego = Object at x @ 0\nrequire[1.0] x > 0.9\n",
        300,
        ego_x,
    );
    assert!(xs.iter().all(|&x| x > 0.9));
}

#[test]
fn soft_requirement_probability_out_of_range_errors() {
    for p in ["1.5", "-0.2", "2"] {
        let scenario = compile(&format!(
            "x = (0, 1)\nego = Object at x @ 0\nrequire[{p}] x > 0.5\n"
        ))
        .unwrap();
        let err = scenario.generate_seeded(0).unwrap_err();
        assert!(
            err.to_string().contains("[0, 1]"),
            "probability {p}: wrong error {err}"
        );
    }
}

#[test]
fn soft_requirement_with_probability_zero_is_noop() {
    let xs = collect(
        "x = (0, 1)\nego = Object at x @ 0\nrequire[0.0] x > 2\n",
        200,
        ego_x,
    );
    // Impossible condition, never enforced: sampling still succeeds.
    assert_eq!(xs.len(), 200);
}

// ---------------------------------------------------------------------
// Mutation (Fig. 25, Termination Step 1)
// ---------------------------------------------------------------------

#[test]
fn mutation_noise_scales_with_by_clause() {
    // `mutate by 2` adds Gaussian noise with twice the standard
    // deviation of `mutate` (positionStdDev defaults to 1).
    let sd1 = std_dev(&collect(
        "ego = Object at 0 @ 0, with requireVisible False\nmutate\n",
        1200,
        ego_x,
    ));
    let sd2 = std_dev(&collect(
        "ego = Object at 0 @ 0, with requireVisible False\nmutate by 2\n",
        1200,
        ego_x,
    ));
    assert!((sd1 - 1.0).abs() < 0.15, "sd1 {sd1}");
    assert!((sd2 - 2.0).abs() < 0.25, "sd2 {sd2}");
}

#[test]
fn mutation_respects_position_std_dev_property() {
    let sd = std_dev(&collect(
        "ego = Object at 0 @ 0, with requireVisible False, with positionStdDev 3\nmutate\n",
        1200,
        ego_x,
    ));
    assert!((sd - 3.0).abs() < 0.35, "sd {sd}");
}

#[test]
fn heading_noise_uses_heading_std_dev() {
    // headingStdDev defaults to 5° (Table 2).
    let hs = collect(
        "ego = Object at 0 @ 0, with requireVisible False\nmutate\n",
        1200,
        |s| s.ego().heading.to_degrees(),
    );
    let sd = std_dev(&hs);
    assert!((sd - 5.0).abs() < 0.8, "heading sd {sd}°");
}

#[test]
fn unmutated_objects_are_exact() {
    let xs = collect("ego = Object at 1 @ 2\n", 50, ego_x);
    assert!(xs.iter().all(|&x| x == 1.0));
}

// ---------------------------------------------------------------------
// Per-instance default evaluation (§4.1)
// ---------------------------------------------------------------------

#[test]
fn class_defaults_resample_per_instance() {
    // `weight: (1, 5)` draws independently for each instance.
    let scenario = compile(
        "class Crate:\n\
         \x20   weight: (1, 5)\n\
         ego = Object at 50 @ 50\n\
         a = Crate at 0 @ 0, with requireVisible False\n\
         b = Crate at 10 @ 0, with requireVisible False\n",
    )
    .unwrap();
    let mut sampler = Sampler::new(&scenario).with_seed(5);
    let mut differed = 0;
    for _ in 0..60 {
        let scene = sampler.sample().unwrap();
        let w: Vec<f64> = scene
            .objects
            .iter()
            .filter(|o| o.class == "Crate")
            .map(|o| o.property("weight").and_then(|p| p.as_number()).unwrap())
            .collect();
        assert_eq!(w.len(), 2);
        assert!(w.iter().all(|&x| (1.0..=5.0).contains(&x)));
        if (w[0] - w[1]).abs() > 1e-9 {
            differed += 1;
        }
    }
    assert!(
        differed > 55,
        "defaults must draw independently: {differed}/60"
    );
}

// ---------------------------------------------------------------------
// Default requirements shape the accepted distribution
// ---------------------------------------------------------------------

#[test]
fn visibility_requirement_conditions_positions() {
    // With a 50 m view distance (Table 2), accepted objects all sit
    // within 50 m of the ego.
    let scenario = compile("ego = Object at 0 @ 0\nObject at (-200, 200) @ (-200, 200)\n").unwrap();
    let mut sampler = Sampler::new(&scenario).with_seed(9);
    for _ in 0..40 {
        let scene = sampler.sample().unwrap();
        let p = scene.objects[1].position_vec();
        assert!(p.norm() <= 50.0 + 1.0, "object at {p:?} should be rejected");
    }
}

#[test]
fn collision_requirement_separates_boxes() {
    let scenario = compile(
        "ego = Object at 0 @ 0, with width 4, with height 4\n\
         Object at (-8, 8) @ (-8, 8), with width 4, with height 4\n",
    )
    .unwrap();
    let mut sampler = Sampler::new(&scenario).with_seed(13);
    for _ in 0..60 {
        let scene = sampler.sample().unwrap();
        let p = scene.objects[1].position_vec();
        // Two axis-aligned 4×4 boxes at distance < 4 in both axes collide.
        assert!(
            p.x.abs() >= 4.0 - 1e-9 || p.y.abs() >= 4.0 - 1e-9,
            "boxes at {p:?} overlap"
        );
    }
}

#[test]
fn rejection_sampling_preserves_conditional_uniformity() {
    // Among accepted samples of a uniform position with `require x > y`,
    // the distribution is uniform on the triangle: E[x] = 2/3, E[y] = 1/3.
    let scenario = compile(
        "ego = Object at (0, 1) @ (0, 1), with requireVisible False\n\
         require ego.position.x > ego.position.y\n",
    )
    .unwrap();
    let mut sampler = Sampler::new(&scenario).with_seed(31);
    let pts: Vec<[f64; 2]> = (0..2000)
        .map(|_| sampler.sample().unwrap().ego().position)
        .collect();
    let ex = mean(&pts.iter().map(|p| p[0]).collect::<Vec<_>>());
    let ey = mean(&pts.iter().map(|p| p[1]).collect::<Vec<_>>());
    assert!((ex - 2.0 / 3.0).abs() < 0.02, "E[x] = {ex}");
    assert!((ey - 1.0 / 3.0).abs() < 0.02, "E[y] = {ey}");
}
