//! Durability, concurrency, and audit-ledger tests of the on-disk
//! artifact store (`scenic_core::store`).
//!
//! The store's contract under fire:
//! - a damaged entry — truncated, garbage, bit-flipped, or written by a
//!   different format version — is never trusted and never panics: the
//!   load misses, the entry is deleted, and the next compile rebuilds
//!   it byte-identical to the original;
//! - any number of threads and processes may share one store directory;
//!   each scenario still ends up as exactly one valid entry;
//! - the digest ledger renders deterministically, survives a clean
//!   `scenic store verify`, and a tampered digest is a typed E301
//!   failure with a non-zero exit.

use scenic::prelude::*;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Arc;

use scenic::core::cache::source_hash;
use scenic::core::STORE_FORMAT_VERSION;

/// A fresh, empty per-test directory (unique per process and test).
fn fresh_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scenic-store-test-{}-{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// FNV-1a (64-bit), the store's checksum — re-derived here so tests can
/// re-seal an entry after deliberately damaging a header field.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

const SRC: &str = "ego = Object at 0 @ 0\nObject at (3, 9) @ (3, 9), facing (0, 360) deg\n";

/// A 2-scene digest through a freshly loaded/compiled scenario — the
/// "same artifact" check used by the rebuild tests.
fn sample_digest(scenario: &scenic::core::Scenario) -> u64 {
    let scenes = Sampler::new(scenario)
        .with_seed(11)
        .sample_batch(2, 1)
        .unwrap();
    batch_digest(&scenes)
}

// ---------------------------------------------------------------------
// Satellite: durability. Corrupt entries are rebuilt byte-identical and
// nothing ever panics.
// ---------------------------------------------------------------------

#[test]
fn damaged_entries_are_rebuilt_byte_identical() {
    let dir = fresh_dir("durability");
    let world = scenic::core::World::bare();

    // Cold write: compile once through a store-backed cache.
    let cold_digest;
    {
        let store = Arc::new(ArtifactStore::open(&dir).unwrap());
        let cache = ScenarioCache::with_store(Arc::clone(&store));
        let scenario = cache.get_or_compile("bare", SRC, &world).unwrap();
        cold_digest = sample_digest(&scenario);
        assert_eq!(store.writes(), 1);
    }
    let path = ArtifactStore::open(&dir)
        .unwrap()
        .entry_path("bare", source_hash(SRC));
    let original = std::fs::read(&path).unwrap();
    assert!(original.len() > 32, "entry should have header + payload");

    // A wrong-format-version entry with a *valid* checksum: exercises
    // the version check itself, not just torn-write detection.
    let wrong_version = {
        let mut bytes = original.clone();
        let body_len = bytes.len() - 8;
        bytes[8..12].copy_from_slice(&(STORE_FORMAT_VERSION + 1).to_le_bytes());
        let checksum = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&checksum.to_le_bytes());
        bytes
    };
    let bit_flipped = {
        let mut bytes = original.clone();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        bytes
    };
    let damages: [(&str, Vec<u8>); 6] = [
        ("empty file", Vec::new()),
        ("truncated to half", original[..original.len() / 2].to_vec()),
        ("torn final byte", original[..original.len() - 1].to_vec()),
        ("garbage bytes", b"not a scenic artifact at all".to_vec()),
        ("bit flip mid-payload", bit_flipped),
        ("wrong format version", wrong_version),
    ];

    for (what, bad_bytes) in damages {
        std::fs::write(&path, &bad_bytes).unwrap();
        let store = Arc::new(ArtifactStore::open(&dir).unwrap());
        let cache = ScenarioCache::with_store(Arc::clone(&store));
        // Never panics, never trusts the damaged entry: the load
        // misses and the compile rebuilds it.
        let scenario = cache.get_or_compile("bare", SRC, &world).unwrap();
        assert_eq!(store.disk_hits(), 0, "{what}: damaged entry must not load");
        assert_eq!(cache.misses(), 1, "{what}: must recompile");
        assert_eq!(
            std::fs::read(&path).unwrap(),
            original,
            "{what}: rebuilt entry must be byte-identical"
        );
        assert_eq!(
            sample_digest(&scenario),
            cold_digest,
            "{what}: rebuilt scenario must sample identically"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_entry_with_ledger_row_is_skipped_by_verify_and_rebuilt() {
    let dir = fresh_dir("missing-entry");
    let bin = env!("CARGO_BIN_EXE_scenic");
    let store_arg = dir.to_str().unwrap();
    let run = |args: &[&str]| {
        Command::new(bin)
            .args(args)
            .output()
            .expect("launch scenic binary")
    };

    // Cold run: writes the entry and pins its digest in the ledger.
    let sample_args = [
        "sample",
        "scenarios/simplest.scenic",
        "--store",
        store_arg,
        "-n",
        "2",
        "--seed",
        "7",
        "--jobs",
        "1",
        "--format",
        "json",
    ];
    let cold = run(&sample_args);
    assert!(cold.status.success(), "{:?}", cold);

    // Delete the artifact but keep its ledger row: verify must warn and
    // skip (exit 0), not fail — the ledger outlives evicted entries.
    let store = ArtifactStore::open(&dir).unwrap();
    let entries = store.ledger_entries().unwrap();
    assert_eq!(entries.len(), 1);
    let path = store.entry_path(&entries[0].0.world, entries[0].0.scenario);
    let original = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    let verify = run(&["store", "verify", "--store", store_arg]);
    assert!(verify.status.success(), "{verify:?}");
    assert!(
        String::from_utf8_lossy(&verify.stderr).contains("skipping"),
        "verify should warn about the missing artifact: {verify:?}"
    );

    // Re-sampling rebuilds the entry byte-identical, with identical
    // stdout, and verify then passes for real.
    let warm = run(&sample_args);
    assert!(warm.status.success(), "{warm:?}");
    assert_eq!(cold.stdout, warm.stdout, "rebuild changed sampled scenes");
    assert_eq!(
        std::fs::read(&path).unwrap(),
        original,
        "rebuilt entry must be byte-identical"
    );
    let verify = run(&["store", "verify", "--store", store_arg]);
    assert!(verify.status.success(), "{verify:?}");
    assert!(
        String::from_utf8_lossy(&verify.stdout).contains("1 of 1 ledger entry verified"),
        "{verify:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Satellite: concurrency. Threads and separate processes hammer one
// store directory; every scenario still has exactly one valid entry.
// ---------------------------------------------------------------------

#[test]
fn thread_and_process_hammer_leaves_one_valid_entry_per_scenario() {
    let dir = fresh_dir("hammer");
    let world = scenic::core::World::bare();
    let sources: Vec<String> = (0..4)
        .map(|k| format!("ego = Object at 0 @ 0\nObject at 0 @ {}\n", k + 3))
        .collect();

    // Threads: every worker races all scenarios through one shared
    // store-backed cache.
    let store = Arc::new(ArtifactStore::open(&dir).unwrap());
    let cache = ScenarioCache::with_store(Arc::clone(&store));
    std::thread::scope(|s| {
        for _ in 0..8 {
            s.spawn(|| {
                for src in &sources {
                    cache.get_or_compile("bare", src, &world).unwrap();
                }
            });
        }
    });
    assert_eq!(cache.misses(), sources.len(), "one compile per scenario");

    // Processes: two `scenic` binaries sampling into the same store,
    // concurrently, must agree byte-for-byte and share one entry.
    let bin = env!("CARGO_BIN_EXE_scenic");
    let children: Vec<_> = (0..2)
        .map(|_| {
            Command::new(bin)
                .args([
                    "sample",
                    "scenarios/simplest.scenic",
                    "--store",
                    dir.to_str().unwrap(),
                    "-n",
                    "2",
                    "--seed",
                    "3",
                    "--jobs",
                    "1",
                    "--format",
                    "json",
                ])
                .stdout(std::process::Stdio::piped())
                .spawn()
                .expect("spawn scenic sample")
        })
        .collect();
    let outputs: Vec<_> = children
        .into_iter()
        .map(|c| c.wait_with_output().expect("child exit"))
        .collect();
    for out in &outputs {
        assert!(out.status.success(), "{out:?}");
    }
    assert_eq!(
        outputs[0].stdout, outputs[1].stdout,
        "racing processes must sample identical scenes"
    );

    // Exactly one valid entry per scenario (4 bare + 1 gta), no
    // leftover temp files, and every entry decodes.
    let store = ArtifactStore::open(&dir).unwrap();
    assert_eq!(store.entry_count(), sources.len() + 1);
    assert_eq!(count_files(&dir, "tmp"), 0, "temp files must not leak");
    for src in &sources {
        assert!(
            store.load("bare", src, &world).is_some(),
            "entry must decode intact after the hammer"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Recursively counts files under `dir` whose name contains `needle`.
fn count_files(dir: &Path, needle: &str) -> usize {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    entries
        .flatten()
        .map(|e| {
            let path = e.path();
            if path.is_dir() {
                count_files(&path, needle)
            } else {
                let name = e.file_name();
                usize::from(name.to_string_lossy().contains(needle))
            }
        })
        .sum()
}

// ---------------------------------------------------------------------
// Satellite: the audit ledger. Golden rendering, clean verify, tampered
// digest = typed E301 + non-zero exit.
// ---------------------------------------------------------------------

#[test]
fn ledger_renders_the_golden_bytes_and_verify_catches_tampering() {
    let dir = fresh_dir("ledger-golden");
    let bin = env!("CARGO_BIN_EXE_scenic");
    let store_arg = dir.to_str().unwrap();
    let out = Command::new(bin)
        .args([
            "sample",
            "scenarios/simplest.scenic",
            "--store",
            store_arg,
            "-n",
            "3",
            "--seed",
            "7",
            "--jobs",
            "2",
            "--format",
            "json",
        ])
        .output()
        .expect("launch scenic binary");
    assert!(out.status.success(), "{out:?}");

    // Golden rendering: deterministic field order, sorted entries, u64s
    // as decimal strings, scenario hashes as zero-padded hex. The
    // digest is the same pinned value `tests/determinism.rs` asserts
    // for simplest.scenic — the ledger cross-checks that contract.
    let ledger_path = ArtifactStore::open(&dir).unwrap().ledger_path();
    let golden = "{\n  \"schema\": \"scenic-store-ledger/v1\",\n  \"entries\": [\n    \
                  {\"scenario\": \"846d841173d1e65f\", \"world\": \"gta\", \"seed\": \"7\", \
                  \"jobs\": 2, \"n\": 3, \"engine\": \"compiled\", \
                  \"digest\": \"11147000041812585473\"}\n  ]\n}\n";
    assert_eq!(
        std::fs::read_to_string(&ledger_path).unwrap(),
        golden,
        "ledger rendering drifted from the golden bytes"
    );

    // Clean round-trip: verify replays the run and passes.
    let verify = Command::new(bin)
        .args(["store", "verify", "--store", store_arg])
        .output()
        .expect("launch scenic binary");
    assert!(verify.status.success(), "{verify:?}");
    assert!(
        String::from_utf8_lossy(&verify.stdout).contains("1 of 1 ledger entry verified"),
        "{verify:?}"
    );

    // Tamper with the pinned digest: verify must report the typed
    // store-digest-divergence diagnostic and exit non-zero.
    let tampered = std::fs::read_to_string(&ledger_path)
        .unwrap()
        .replace("11147000041812585473", "11147000041812585474");
    std::fs::write(&ledger_path, tampered).unwrap();
    let verify = Command::new(bin)
        .args(["store", "verify", "--store", store_arg])
        .output()
        .expect("launch scenic binary");
    assert!(
        !verify.status.success(),
        "tampered ledger must fail verify: {verify:?}"
    );
    let err = String::from_utf8_lossy(&verify.stderr);
    assert!(err.contains("E301"), "typed code missing: {err}");
    assert!(
        err.contains("store-digest-divergence"),
        "diagnostic slug missing: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
