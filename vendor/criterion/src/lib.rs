//! Offline, API-compatible subset of `criterion`.
//!
//! The build environment has no access to crates.io, so the four
//! `harness = false` bench targets link against this stub instead. It
//! keeps the `criterion_group!` / `criterion_main!` / `Criterion` /
//! `BenchmarkGroup` / `Bencher` shape but replaces the statistical
//! machinery with a simple wall-clock loop: a short warm-up, then
//! `sample_size` timed batches, reporting min / mean / max per
//! iteration. Good enough to rank hot paths and catch order-of-magnitude
//! regressions; swap back to real criterion when a registry is
//! available.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value sink (`std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point handed to each bench function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_bench(id, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed batches per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a single named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_bench(id, self.sample_size, &mut f);
        self
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; `iter` times the
/// routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `self.iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, samples: usize, f: &mut F) {
    // Calibrate: run once to estimate cost, then pick an iteration count
    // targeting ~20ms per sample batch (capped for slow routines).
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let once = bencher.elapsed.max(Duration::from_nanos(1));
    let per_batch = (Duration::from_millis(20).as_nanos() / once.as_nanos()).clamp(1, 10_000);

    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters: per_batch as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed.as_secs_f64() / per_batch as f64);
    }
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = times.iter().cloned().fold(0.0, f64::max);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    println!(
        "bench: {id:<40} [{} {} {}]  ({} samples x {} iters)",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max),
        samples,
        per_batch
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1}ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2}µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2}ms", seconds * 1e3)
    } else {
        format!("{seconds:.2}s")
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
