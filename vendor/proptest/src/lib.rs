//! Offline, API-compatible subset of `proptest`.
//!
//! The build environment has no access to crates.io, so the workspace's
//! property tests run on this stub: the `proptest!` macro expands each
//! property into a `#[test]` that draws `Config::cases` deterministic
//! pseudo-random cases (seeded per case index, so failures reproduce
//! across runs and platforms) and evaluates the body. There is no
//! shrinking — a failing case reports its exact inputs instead.
//!
//! Supported strategy forms — the ones the workspace uses:
//!
//! - numeric ranges: `-100.0..100.0f64`, `0u64..1000`, `1u32..=8`, …;
//! - [`bool::ANY`], [`num::u8::ANY`];
//! - [`collection::vec(elem, 0..80)`](collection::vec);
//! - string literals as a regex subset: one `[class]{lo,hi}` character
//!   class with ranges and `\n`/`\t`/`\\` escapes (e.g.
//!   `"[ -~\n\t]{0,120}"`).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Error type carried out of a failing property body.
pub type TestCaseError = String;

/// Runner configuration (`cases` is the only knob this stub honors).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of cases to draw per property.
    pub cases: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

impl Config {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

/// Generates values of its associated type from a seeded RNG.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod bool {
    //! Boolean strategies.
    use super::*;

    /// Uniform `true` / `false`.
    pub struct Any;

    /// The any-bool strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = ::core::primitive::bool;
        fn new_value(&self, rng: &mut StdRng) -> Self::Value {
            rng.gen()
        }
    }
}

pub mod num {
    //! Numeric "any value" strategies.

    macro_rules! any_mod {
        ($($m:ident : $t:ty),*) => {$(
            pub mod $m {
                use $crate::Strategy;
                use rand::rngs::StdRng;
                use rand::Rng;

                /// Uniform over the full domain of the type.
                pub struct Any;

                /// The any-value strategy.
                pub const ANY: Any = Any;

                impl Strategy for Any {
                    type Value = $t;
                    fn new_value(&self, rng: &mut StdRng) -> $t {
                        rng.gen()
                    }
                }
            }
        )*};
    }
    any_mod!(u8: u8, u16: u16, u32: u32, u64: u64, i8: i8, i16: i16, i32: i32, i64: i64);
}

pub mod collection {
    //! Collection strategies.
    use super::*;

    /// Strategy producing `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, 0..80)`: a vector of `element` draws.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------
// Regex-subset string strategy
// ---------------------------------------------------------------------

impl Strategy for &str {
    type Value = String;
    fn new_value(&self, rng: &mut StdRng) -> String {
        let (chars, lo, hi) = parse_class_pattern(self).unwrap_or_else(|| {
            panic!(
                "proptest stub: unsupported string strategy {self:?} \
                 (supported: one \"[class]{{lo,hi}}\" pattern)"
            )
        });
        let len = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
        (0..len)
            .map(|_| chars[rng.gen_range(0..chars.len())])
            .collect()
    }
}

/// Parses `[class]{lo,hi}` into (alphabet, lo, hi).
fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let (class, quant) = rest.split_at(close);
    let quant = quant
        .strip_prefix(']')?
        .strip_prefix('{')?
        .strip_suffix('}')?;
    let (lo, hi) = match quant.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = quant.trim().parse().ok()?;
            (n, n)
        }
    };

    let mut chars = Vec::new();
    let mut iter = class.chars().peekable();
    while let Some(c) = iter.next() {
        let c = if c == '\\' {
            match iter.next()? {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                other => other,
            }
        } else {
            c
        };
        if iter.peek() == Some(&'-') {
            let mut lookahead = iter.clone();
            lookahead.next(); // the '-'
            if let Some(&end) = lookahead.peek() {
                // A range `c-end` (a trailing '-' is a literal).
                iter = lookahead;
                iter.next();
                let end = if end == '\\' { iter.next()? } else { end };
                for code in (c as u32)..=(end as u32) {
                    chars.extend(char::from_u32(code));
                }
                continue;
            }
        }
        chars.push(c);
    }
    if chars.is_empty() {
        return None;
    }
    Some((chars, lo, hi))
}

/// Builds the per-case RNG: deterministic in (property name, case index).
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash ^ ((case as u64) << 32 | 0x5EED))
}

pub mod test_runner {
    //! Runner types (re-exported into the prelude).
    pub use super::Config;
}

pub mod prelude {
    //! Everything the `proptest!` body needs.
    pub use super::test_runner::Config as ProptestConfig;
    pub use super::{Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts inside a property body, failing the case (not panicking the
/// whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// `prop_assert!(a == b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            left,
            right
        );
    }};
}

/// `prop_assert!(a != b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "assertion failed: {} != {}\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            left,
            right
        );
    }};
}

/// Discards the current case when its inputs are uninteresting.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// The property-test harness macro. Each `fn` inside becomes a
/// `#[test]` drawing `Config::cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            for case in 0..config.cases {
                let mut rng = $crate::case_rng(stringify!($name), case);
                $(let $arg = $crate::Strategy::new_value(&$strategy, &mut rng);)*
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}:\n{}\ninputs:{}",
                        stringify!($name),
                        case,
                        config.cases,
                        message,
                        String::new() $(+ &format!("\n  {} = {:?}", stringify!($arg), $arg))*
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn class_pattern_parses() {
        let (chars, lo, hi) = super::parse_class_pattern("[ -~\n\t]{0,120}").unwrap();
        assert_eq!((lo, hi), (0, 120));
        assert!(chars.contains(&' '));
        assert!(chars.contains(&'~'));
        assert!(chars.contains(&'\n'));
        assert!(chars.contains(&'\t'));
        assert!(!chars.contains(&'\u{7f}'));
    }

    #[test]
    fn case_rng_is_deterministic() {
        use rand::RngCore;
        let a = super::case_rng("x", 3).next_u64();
        let b = super::case_rng("x", 3).next_u64();
        let c = super::case_rng("x", 4).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in -5.0..5.0f64, n in 1u32..10, b in crate::bool::ANY) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert!(usize::from(b) <= 1);
        }

        #[test]
        fn vec_strategy_obeys_size(bytes in crate::collection::vec(crate::num::u8::ANY, 2..6)) {
            prop_assert!(bytes.len() >= 2 && bytes.len() < 6);
        }

        #[test]
        fn string_strategy_draws_from_class(s in "[a-c]{1,4}") {
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_override_applies(seed in 0u64..1000) {
            prop_assert!(seed < 1000);
        }
    }
}
