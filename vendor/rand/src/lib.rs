//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the narrow slice of `rand` 0.8 it actually uses. The
//! generator behind both [`rngs::StdRng`] and [`rngs::SmallRng`] is
//! **xoshiro256++** seeded via **SplitMix64** — an explicitly pinned,
//! platform-independent algorithm, so `seed_from_u64(s)` produces the
//! same stream on every platform and toolchain. Reproducibility of
//! seeded sampling is a documented guarantee relied on by
//! `scenic_core::sampler::Sampler::sample_seeded` and covered by the
//! digest regression test in the façade crate (`tests/determinism.rs`).
//!
//! Supported surface:
//!
//! - [`RngCore`] (`next_u32` / `next_u64` / `fill_bytes`);
//! - [`Rng`] (`gen`, `gen_range` over `Range` / `RangeInclusive`,
//!   `gen_bool`), blanket-implemented for every `RngCore` including
//!   `dyn RngCore`;
//! - [`SeedableRng`] (`from_seed`, `seed_from_u64`, `from_entropy`);
//! - [`rngs::StdRng`], [`rngs::SmallRng`].

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of randomness.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A value uniformly sampleable from an RNG's raw bits (the `Standard`
/// distribution of real `rand`).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// A 53-bit-precision uniform draw from `[0, 1)`.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A type uniformly sampleable between two bounds (mirrors real rand's
/// `SampleUniform`; keeping `SampleRange` blanket-generic over it is
/// what lets `rng.gen_range(-1.0..1.0) * x` infer `f64` the way real
/// rand does).
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`; panics if the range is empty.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`; panics if `lo > hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let v = lo + (hi - lo) * unit_f64(rng) as $t;
                // Rounding (f64→f32 cast, or lo + span*u rounding up)
                // can land exactly on `hi`; keep the half-open contract.
                if v < hi {
                    v
                } else {
                    hi.next_down().max(lo)
                }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * unit_f64(rng) as $t
            }
        }
    )*};
}
impl_uniform_float!(f64, f32);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range; panics if it is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Convenience methods on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of its type.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds from a `u64`, expanded with SplitMix64 (platform-stable).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }

    /// Builds from weak environmental entropy (time, PID, a counter).
    /// Good enough for unseeded exploratory sampling; seeded paths never
    /// go through here.
    fn from_entropy() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let mix = nanos
            ^ (std::process::id() as u64).rotate_left(32)
            ^ COUNTER.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
        Self::seed_from_u64(mix)
    }
}

/// SplitMix64: the seed-expansion generator (Steele, Lea & Flood 2014).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    //! The concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: **xoshiro256++ 1.0**
    /// (Blackman & Vigna 2019), seeded via SplitMix64.
    ///
    /// Pinned by policy: changing this algorithm is a breaking change
    /// gated by the seeded-scene digest test in the façade crate.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro256++ requires a nonzero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }

    /// Alias of [`StdRng`]: one pinned algorithm serves both roles here.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_stable() {
        // Regression-pins the seed expansion + xoshiro256++ stream.
        let mut rng = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                5987356902031041503,
                7051070477665621255,
                6633766593972829180,
                211316841551650330
            ]
        );
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(1234);
        let mut b = StdRng::seed_from_u64(1234);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&f));
            let i = rng.gen_range(3..9usize);
            assert!((3..9).contains(&i));
            let j = rng.gen_range(0..=4u32);
            assert!(j <= 4);
        }
    }

    #[test]
    fn works_through_dyn_rng_core() {
        let mut rng = StdRng::seed_from_u64(9);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&x));
        assert!(dyn_rng.gen_range(0..10u64) < 10);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
