//! Offline, API-compatible subset of `serde`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of serde it uses: `#[derive(Serialize,
//! Deserialize)]` plus JSON via the sibling `serde_json` stub.
//!
//! Unlike real serde (visitor-based, format-agnostic), this stub uses a
//! concrete tree data model: [`Value`]. `Serialize` maps a type into a
//! `Value`; `Deserialize` maps a `Value` back. `serde_json` re-exports
//! [`Value`] and adds the JSON text layer. The derive macro (in
//! `serde_derive`) supports named-field structs, tuple structs
//! (single-field = transparent newtype), unit/newtype/struct-variant
//! enums, and the container attributes actually used in this workspace:
//! `#[serde(untagged)]` and `#[serde(tag = "...", rename_all =
//! "snake_case")]`.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model: a JSON-shaped tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`, like JavaScript).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// A key-ordered map (insertion order preserved).
    Object(Map),
}

/// An insertion-ordered string-keyed map of [`Value`]s.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts (replacing any existing entry with the same key).
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Looks up by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl Value {
    /// Type name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Borrows the array items, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrows the map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Borrows the string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the number as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Returns the number as `i64` if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    /// Returns the boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Whether this is a string.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// Whether this is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// Whether this is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Whether this is a number.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// Keyed access that yields `Null` for missing keys / non-objects
    /// (mirrors `serde_json::Value`'s `Index` semantics).
    pub fn get_path(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Object(map) => map.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get_path(key)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// A (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error with the given message.
    pub fn msg(message: impl Into<String>) -> Self {
        Error(message.into())
    }

    /// "expected X, found Y" helper.
    pub fn expected(what: &str, found: &Value) -> Self {
        Error(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can map itself into the [`Value`] data model.
pub trait Serialize {
    /// Converts to the tree model.
    fn to_value(&self) -> Value;
}

/// A type reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Converts from the tree model.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::expected("bool", value))
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            other => Err(Error::expected("null", other)),
        }
    }
}

macro_rules! impl_number_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value.as_f64().ok_or_else(|| Error::expected("number", value))?;
                Ok(n as $t)
            }
        }
    )*};
}
impl_number_float!(f64, f32);

macro_rules! impl_number_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value.as_f64().ok_or_else(|| Error::expected("number", value))?;
                // Fail loud on fractional or out-of-domain values rather
                // than silently truncating/saturating through `as`.
                if n.fract() != 0.0 || !n.is_finite() {
                    return Err(Error::msg(format!(
                        "expected integer ({}), found {n}", stringify!($t)
                    )));
                }
                if n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return Err(Error::msg(format!(
                        "{n} out of range for {}", stringify!($t)
                    )));
                }
                Ok(n as $t)
            }
        }
    )*};
}
impl_number_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", value))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::expected("string", value))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg(format!(
                "expected single-char string, found {s:?}"
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::expected("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::expected("array", value))?;
        if items.len() != N {
            return Err(Error::msg(format!(
                "expected array of length {N}, found {}",
                items.len()
            )));
        }
        let mut out = Vec::with_capacity(N);
        for item in items {
            out.push(T::from_value(item)?);
        }
        out.try_into()
            .map_err(|_| Error::msg("array length mismatch"))
    }
}

impl<T: Serialize> Serialize for BTreeMap<String, T> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<T: Deserialize> Deserialize for BTreeMap<String, T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let map = value
            .as_object()
            .ok_or_else(|| Error::expected("object", value))?;
        map.iter()
            .map(|(k, v)| Ok((k.clone(), T::from_value(v)?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for HashMap<String, T> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort keys.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Object(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].to_value()))
                .collect(),
        )
    }
}

impl<T: Deserialize> Deserialize for HashMap<String, T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let map = value
            .as_object()
            .ok_or_else(|| Error::expected("object", value))?;
        map.iter()
            .map(|(k, v)| Ok((k.clone(), T::from_value(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip() {
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<f64>::from_value(&Value::Number(2.0)).unwrap(),
            Some(2.0)
        );
        assert_eq!(Some(3.0f64).to_value(), Value::Number(3.0));
        assert_eq!(None::<f64>.to_value(), Value::Null);
    }

    #[test]
    fn array_round_trip() {
        let a = [1.5f64, -2.0];
        let v = a.to_value();
        assert_eq!(<[f64; 2]>::from_value(&v).unwrap(), a);
        assert!(<[f64; 3]>::from_value(&v).is_err());
    }

    #[test]
    fn integer_deserialize_is_strict() {
        assert_eq!(u32::from_value(&Value::Number(3.0)).unwrap(), 3);
        assert!(u32::from_value(&Value::Number(3.7)).is_err());
        assert!(u64::from_value(&Value::Number(-1.0)).is_err());
        assert!(u8::from_value(&Value::Number(256.0)).is_err());
        assert!(i8::from_value(&Value::Number(-129.0)).is_err());
        // Floats stay permissive.
        assert_eq!(f64::from_value(&Value::Number(3.7)).unwrap(), 3.7);
    }

    #[test]
    fn map_preserves_insertion_order_and_replaces() {
        let mut m = Map::new();
        m.insert("b", Value::Number(1.0));
        m.insert("a", Value::Number(2.0));
        m.insert("b", Value::Number(3.0));
        let keys: Vec<&String> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["b", "a"]);
        assert_eq!(m.get("b"), Some(&Value::Number(3.0)));
    }

    #[test]
    fn value_indexing() {
        let mut obj = Map::new();
        obj.insert("xs", Value::Array(vec![Value::Number(1.0)]));
        let v = Value::Object(obj);
        assert_eq!(v["xs"][0], Value::Number(1.0));
        assert!(v["missing"].is_null());
        assert!(v["xs"][9].is_null());
    }
}
