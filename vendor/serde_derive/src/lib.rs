//! `#[derive(Serialize, Deserialize)]` for the offline serde stub.
//!
//! Implemented directly on `proc_macro` token trees (the build
//! environment has no `syn`/`quote`). Supported shapes — the ones this
//! workspace actually uses, plus the obvious neighbors:
//!
//! - named-field structs → JSON objects;
//! - tuple structs: one field is a transparent newtype, N fields an
//!   array; unit structs → `null`;
//! - enums: externally tagged by default; `#[serde(untagged)]`;
//!   `#[serde(tag = "...")]` (internally tagged) with optional
//!   `rename_all = "snake_case" | "lowercase"`.
//!
//! Unsupported shapes (generics, field-level attributes, tuple variants
//! in tagged enums) produce a `compile_error!` naming the limitation
//! rather than silently misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------
// Model
// ---------------------------------------------------------------------

struct Container {
    name: String,
    attrs: ContainerAttrs,
    data: Data,
}

#[derive(Default)]
struct ContainerAttrs {
    untagged: bool,
    tag: Option<String>,
    rename_all: Option<String>,
}

enum Data {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_container(input: TokenStream) -> Result<Container, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    let mut attrs = ContainerAttrs::default();
    // Leading attributes (doc comments arrive as `#[doc = ...]` too).
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    parse_serde_attr(&g.stream(), &mut attrs)?;
                    i += 2;
                } else {
                    return Err("stray `#` in derive input".into());
                }
            }
            _ => break,
        }
    }

    // Visibility.
    if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
        i += 1;
        if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found `{other}`")),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => return Err(format!("expected type name, found `{other}`")),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stub derive does not support generic type `{name}`"
        ));
    }

    let data = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::NamedStruct(parse_named_fields(&g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::TupleStruct(count_top_level_items(&g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::UnitStruct,
            other => return Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(&g.stream())?)
            }
            other => return Err(format!("unsupported enum body: {other:?}")),
        },
        other => return Err(format!("cannot derive for `{other}`")),
    };

    Ok(Container { name, attrs, data })
}

/// Parses one `#[...]` attribute body, recording serde container attrs.
fn parse_serde_attr(stream: &TokenStream, attrs: &mut ContainerAttrs) -> Result<(), String> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return Ok(()), // some other attribute; ignore
    }
    let Some(TokenTree::Group(g)) = tokens.get(1) else {
        return Ok(());
    };
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut i = 0;
    while i < inner.len() {
        let key = match &inner[i] {
            TokenTree::Ident(id) => id.to_string(),
            TokenTree::Punct(p) if p.as_char() == ',' => {
                i += 1;
                continue;
            }
            other => return Err(format!("unsupported serde attribute token `{other}`")),
        };
        if matches!(inner.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            let value = match inner.get(i + 2) {
                Some(TokenTree::Literal(lit)) => {
                    let s = lit.to_string();
                    s.trim_matches('"').to_string()
                }
                other => return Err(format!("expected literal for serde `{key}`, got {other:?}")),
            };
            match key.as_str() {
                "tag" => attrs.tag = Some(value),
                "rename_all" => attrs.rename_all = Some(value),
                other => return Err(format!("unsupported serde attribute `{other}`")),
            }
            i += 3;
        } else {
            match key.as_str() {
                "untagged" => attrs.untagged = true,
                other => return Err(format!("unsupported serde attribute `{other}`")),
            }
            i += 1;
        }
    }
    Ok(())
}

/// Splits a token stream on top-level commas. "Top-level" accounts for
/// generic angle brackets, which are plain `Punct`s rather than groups
/// (so the comma in `BTreeMap<String, V>` does not split).
fn split_top_level(stream: &TokenStream) -> Vec<Vec<TokenTree>> {
    let mut items = vec![Vec::new()];
    let mut angle_depth = 0usize;
    for token in stream.clone() {
        match &token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1)
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                items.push(Vec::new());
                continue;
            }
            _ => {}
        }
        items.last_mut().unwrap().push(token);
    }
    items.retain(|item| !item.is_empty());
    items
}

fn count_top_level_items(stream: &TokenStream) -> usize {
    split_top_level(stream).len()
}

/// Rejects field/variant-level `#[serde(...)]` attributes: this stub
/// does not implement them, and silently ignoring one (rename, skip,
/// default, …) would produce wrong JSON with no diagnostic.
fn reject_serde_attr(attr: Option<&TokenTree>, context: &str) -> Result<(), String> {
    if let Some(TokenTree::Group(g)) = attr {
        if matches!(
            g.stream().into_iter().next(),
            Some(TokenTree::Ident(id)) if id.to_string() == "serde"
        ) {
            return Err(format!(
                "serde stub derive does not support {context}-level serde attributes"
            ));
        }
    }
    Ok(())
}

/// Extracts field names from a named-field body.
fn parse_named_fields(stream: &TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    for chunk in split_top_level(stream) {
        let mut i = 0;
        // Skip attributes and visibility.
        loop {
            match chunk.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    reject_serde_attr(chunk.get(i + 1), "field")?;
                    i += 2;
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if matches!(
                        chunk.get(i),
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                    ) {
                        i += 1;
                    }
                }
                _ => break,
            }
        }
        match (chunk.get(i), chunk.get(i + 1)) {
            (Some(TokenTree::Ident(name)), Some(TokenTree::Punct(p))) if p.as_char() == ':' => {
                fields.push(name.to_string());
            }
            _ => return Err(format!("cannot parse struct field: {chunk:?}")),
        }
    }
    Ok(fields)
}

fn parse_variants(stream: &TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for chunk in split_top_level(stream) {
        let mut i = 0;
        while matches!(chunk.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            reject_serde_attr(chunk.get(i + 1), "variant")?;
            i += 2;
        }
        let name = match chunk.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("cannot parse enum variant: {other:?}")),
        };
        let kind = match chunk.get(i + 1) {
            None => VariantKind::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                VariantKind::Tuple(count_top_level_items(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                VariantKind::Named(parse_named_fields(&g.stream())?)
            }
            other => return Err(format!("unsupported variant shape for `{name}`: {other:?}")),
        };
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn rename(variant: &str, rule: Option<&str>) -> String {
    match rule {
        Some("snake_case") => {
            let mut out = String::new();
            for (i, c) in variant.chars().enumerate() {
                if c.is_uppercase() {
                    if i > 0 {
                        out.push('_');
                    }
                    out.extend(c.to_lowercase());
                } else {
                    out.push(c);
                }
            }
            out
        }
        Some("lowercase") => variant.to_lowercase(),
        _ => variant.to_string(),
    }
}

// ---------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let container = match parse_container(input) {
        Ok(c) => c,
        Err(e) => return compile_error(&e),
    };
    match generate_serialize(&container) {
        Ok(code) => code.parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}

fn generate_serialize(c: &Container) -> Result<String, String> {
    let name = &c.name;
    let body = match &c.data {
        Data::NamedStruct(fields) => {
            let mut code = String::from("let mut map = ::serde::Map::new();\n");
            for f in fields {
                code.push_str(&format!(
                    "map.insert({f:?}, ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            code.push_str("::serde::Value::Object(map)");
            code
        }
        Data::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Data::UnitStruct => "::serde::Value::Null".to_string(),
        Data::Enum(variants) => generate_enum_serialize(c, variants)?,
    };
    Ok(format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    ))
}

fn generate_enum_serialize(c: &Container, variants: &[Variant]) -> Result<String, String> {
    let name = &c.name;
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        let renamed = rename(vname, c.attrs.rename_all.as_deref());
        let arm = if let Some(tag) = &c.attrs.tag {
            match &v.kind {
                VariantKind::Unit => format!(
                    "{name}::{vname} => {{\n\
                     let mut map = ::serde::Map::new();\n\
                     map.insert({tag:?}, ::serde::Value::String({renamed:?}.to_string()));\n\
                     ::serde::Value::Object(map)\n}}\n"
                ),
                VariantKind::Named(fields) => {
                    let pat = fields.join(", ");
                    let mut inserts = format!(
                        "let mut map = ::serde::Map::new();\n\
                         map.insert({tag:?}, ::serde::Value::String({renamed:?}.to_string()));\n"
                    );
                    for f in fields {
                        inserts.push_str(&format!(
                            "map.insert({f:?}, ::serde::Serialize::to_value({f}));\n"
                        ));
                    }
                    format!(
                        "{name}::{vname} {{ {pat} }} => {{\n{inserts}::serde::Value::Object(map)\n}}\n"
                    )
                }
                VariantKind::Tuple(_) => {
                    return Err(format!(
                        "internally tagged enum `{name}` cannot have tuple variant `{vname}`"
                    ))
                }
            }
        } else if c.attrs.untagged {
            match &v.kind {
                VariantKind::Unit => format!("{name}::{vname} => ::serde::Value::Null,\n"),
                VariantKind::Tuple(1) => {
                    format!("{name}::{vname}(inner) => ::serde::Serialize::to_value(inner),\n")
                }
                VariantKind::Tuple(n) => {
                    let binders: Vec<String> = (0..*n).map(|i| format!("v{i}")).collect();
                    let items: Vec<String> = binders
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    format!(
                        "{name}::{vname}({}) => ::serde::Value::Array(vec![{}]),\n",
                        binders.join(", "),
                        items.join(", ")
                    )
                }
                VariantKind::Named(fields) => {
                    let pat = fields.join(", ");
                    let mut inserts = String::from("let mut map = ::serde::Map::new();\n");
                    for f in fields {
                        inserts.push_str(&format!(
                            "map.insert({f:?}, ::serde::Serialize::to_value({f}));\n"
                        ));
                    }
                    format!(
                        "{name}::{vname} {{ {pat} }} => {{\n{inserts}::serde::Value::Object(map)\n}}\n"
                    )
                }
            }
        } else {
            // Externally tagged (serde default).
            match &v.kind {
                VariantKind::Unit => {
                    format!("{name}::{vname} => ::serde::Value::String({renamed:?}.to_string()),\n")
                }
                VariantKind::Tuple(1) => format!(
                    "{name}::{vname}(inner) => {{\n\
                     let mut map = ::serde::Map::new();\n\
                     map.insert({renamed:?}, ::serde::Serialize::to_value(inner));\n\
                     ::serde::Value::Object(map)\n}}\n"
                ),
                VariantKind::Tuple(n) => {
                    let binders: Vec<String> = (0..*n).map(|i| format!("v{i}")).collect();
                    let items: Vec<String> = binders
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    format!(
                        "{name}::{vname}({binder_list}) => {{\n\
                         let mut map = ::serde::Map::new();\n\
                         map.insert({renamed:?}, ::serde::Value::Array(vec![{item_list}]));\n\
                         ::serde::Value::Object(map)\n}}\n",
                        binder_list = binders.join(", "),
                        item_list = items.join(", ")
                    )
                }
                VariantKind::Named(fields) => {
                    let pat = fields.join(", ");
                    let mut inserts = String::from("let mut inner = ::serde::Map::new();\n");
                    for f in fields {
                        inserts.push_str(&format!(
                            "inner.insert({f:?}, ::serde::Serialize::to_value({f}));\n"
                        ));
                    }
                    format!(
                        "{name}::{vname} {{ {pat} }} => {{\n{inserts}\
                         let mut map = ::serde::Map::new();\n\
                         map.insert({renamed:?}, ::serde::Value::Object(inner));\n\
                         ::serde::Value::Object(map)\n}}\n"
                    )
                }
            }
        };
        arms.push_str(&arm);
    }
    Ok(format!("match self {{\n{arms}}}\n"))
}

// ---------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let container = match parse_container(input) {
        Ok(c) => c,
        Err(e) => return compile_error(&e),
    };
    match generate_deserialize(&container) {
        Ok(code) => code.parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}

/// `obj.get(field)` with Option-aware missing-field handling: absent
/// keys deserialize from `Null` (so `Option` fields default to `None`)
/// and other types produce a "missing field" error.
fn field_expr(container: &str, field: &str) -> String {
    format!(
        "match obj.get({field:?}) {{\n\
         Some(v) => ::serde::Deserialize::from_value(v)\
         .map_err(|e| ::serde::Error::msg(format!(\"{container}.{field}: {{e}}\")))?,\n\
         None => ::serde::Deserialize::from_value(&::serde::Value::Null)\
         .map_err(|_| ::serde::Error::msg(\"missing field `{field}` in {container}\"))?,\n\
         }}"
    )
}

fn named_struct_literal(path: &str, container: &str, fields: &[String]) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: {expr}", expr = field_expr(container, f)))
        .collect();
    format!("{path} {{\n{}\n}}", inits.join(",\n"))
}

fn generate_deserialize(c: &Container) -> Result<String, String> {
    let name = &c.name;
    let body = match &c.data {
        Data::NamedStruct(fields) => format!(
            "let obj = value.as_object()\
             .ok_or_else(|| ::serde::Error::expected(\"object ({name})\", value))?;\n\
             Ok({lit})",
            lit = named_struct_literal(name, name, fields)
        ),
        Data::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        Data::TupleStruct(n) => {
            let gets: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = value.as_array()\
                 .ok_or_else(|| ::serde::Error::expected(\"array ({name})\", value))?;\n\
                 if items.len() != {n} {{\n\
                 return Err(::serde::Error::msg(format!(\
                 \"expected {n} elements for {name}, found {{}}\", items.len())));\n}}\n\
                 Ok({name}({}))",
                gets.join(", ")
            )
        }
        Data::UnitStruct => format!(
            "match value {{\n\
             ::serde::Value::Null => Ok({name}),\n\
             other => Err(::serde::Error::expected(\"null ({name})\", other)),\n}}"
        ),
        Data::Enum(variants) => generate_enum_deserialize(c, variants)?,
    };
    Ok(format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    ))
}

fn generate_enum_deserialize(c: &Container, variants: &[Variant]) -> Result<String, String> {
    let name = &c.name;
    if let Some(tag) = &c.attrs.tag {
        let mut arms = String::new();
        for v in variants {
            let vname = &v.name;
            let renamed = rename(vname, c.attrs.rename_all.as_deref());
            let arm = match &v.kind {
                VariantKind::Unit => format!("{renamed:?} => Ok({name}::{vname}),\n"),
                VariantKind::Named(fields) => format!(
                    "{renamed:?} => Ok({lit}),\n",
                    lit = named_struct_literal(&format!("{name}::{vname}"), name, fields)
                ),
                VariantKind::Tuple(_) => {
                    return Err(format!(
                        "internally tagged enum `{name}` cannot have tuple variant `{vname}`"
                    ))
                }
            };
            arms.push_str(&arm);
        }
        return Ok(format!(
            "let obj = value.as_object()\
             .ok_or_else(|| ::serde::Error::expected(\"object ({name})\", value))?;\n\
             let tag = obj.get({tag:?})\
             .and_then(|t| t.as_str())\
             .ok_or_else(|| ::serde::Error::msg(\"missing tag `{tag}` in {name}\"))?;\n\
             match tag {{\n{arms}\
             other => Err(::serde::Error::msg(format!(\"unknown {name} variant `{{other}}`\"))),\n}}"
        ));
    }

    if c.attrs.untagged {
        let mut tries = String::new();
        for v in variants {
            let vname = &v.name;
            let attempt = match &v.kind {
                VariantKind::Unit => format!(
                    "if matches!(value, ::serde::Value::Null) {{ return Ok({name}::{vname}); }}\n"
                ),
                VariantKind::Tuple(1) => format!(
                    "if let Ok(inner) = ::serde::Deserialize::from_value(value) {{\n\
                     return Ok({name}::{vname}(inner));\n}}\n"
                ),
                VariantKind::Tuple(n) => {
                    let gets: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])"))
                        .collect();
                    format!(
                        "if let Some(items) = value.as_array() {{\n\
                         if items.len() == {n} {{\n\
                         if let ({oks}) = ({gets}) {{\n\
                         return Ok({name}::{vname}({unwraps}));\n}}\n}}\n}}\n",
                        oks = (0..*n)
                            .map(|i| format!("Ok(v{i})"))
                            .collect::<Vec<_>>()
                            .join(", "),
                        gets = gets.join(", "),
                        unwraps = (0..*n)
                            .map(|i| format!("v{i}"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                }
                VariantKind::Named(fields) => {
                    let lit = named_struct_literal(&format!("{name}::{vname}"), name, fields);
                    let keys: Vec<String> = fields
                        .iter()
                        .map(|f| format!("obj.contains_key({f:?})"))
                        .collect();
                    format!(
                        "if let Some(obj) = value.as_object() {{\n\
                         if {cond} {{\n\
                         let attempt = (|| -> ::std::result::Result<Self, ::serde::Error> {{ Ok({lit}) }})();\n\
                         if let Ok(v) = attempt {{ return Ok(v); }}\n}}\n}}\n",
                        cond = if keys.is_empty() { "true".to_string() } else { keys.join(" && ") }
                    )
                }
            };
            tries.push_str(&attempt);
        }
        return Ok(format!(
            "{tries}Err(::serde::Error::msg(format!(\
             \"no {name} variant matched a {{}}\", value.kind())))"
        ));
    }

    // Externally tagged (serde default).
    let mut string_arms = String::new();
    let mut keyed_arms = String::new();
    for v in variants {
        let vname = &v.name;
        let renamed = rename(vname, c.attrs.rename_all.as_deref());
        match &v.kind {
            VariantKind::Unit => {
                string_arms.push_str(&format!("{renamed:?} => return Ok({name}::{vname}),\n"));
            }
            VariantKind::Tuple(1) => keyed_arms.push_str(&format!(
                "if let Some(inner) = obj.get({renamed:?}) {{\n\
                 return Ok({name}::{vname}(::serde::Deserialize::from_value(inner)?));\n}}\n"
            )),
            VariantKind::Tuple(n) => {
                let gets: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                    .collect();
                keyed_arms.push_str(&format!(
                    "if let Some(inner) = obj.get({renamed:?}) {{\n\
                     let items = inner.as_array()\
                     .ok_or_else(|| ::serde::Error::expected(\"array\", inner))?;\n\
                     if items.len() != {n} {{\n\
                     return Err(::serde::Error::msg(\"wrong tuple arity for {name}::{vname}\"));\n}}\n\
                     return Ok({name}::{vname}({gets}));\n}}\n",
                    gets = gets.join(", ")
                ));
            }
            VariantKind::Named(fields) => {
                let lit = named_struct_literal(&format!("{name}::{vname}"), name, fields);
                keyed_arms.push_str(&format!(
                    "if let Some(inner) = obj.get({renamed:?}) {{\n\
                     let obj = inner.as_object()\
                     .ok_or_else(|| ::serde::Error::expected(\"object\", inner))?;\n\
                     return Ok({lit});\n}}\n"
                ));
            }
        }
    }
    Ok(format!(
        "if let Some(s) = value.as_str() {{\n\
         match s {{\n{string_arms}_ => {{}}\n}}\n}}\n\
         if let Some(obj) = value.as_object() {{\n{keyed_arms}}}\n\
         Err(::serde::Error::msg(format!(\"no {name} variant matched a {{}}\", value.kind())))"
    ))
}
