//! Offline, API-compatible subset of `serde_json`.
//!
//! Text layer over the tree data model defined in the vendored `serde`
//! stub: [`to_string`] / [`to_string_pretty`] / [`from_str`] plus the
//! re-exported [`Value`] with `Index` access (`value["key"][0]`).
//!
//! The grammar is standard JSON (RFC 8259): objects, arrays, strings
//! with `\uXXXX` escapes, numbers, booleans, `null`. Numbers are `f64`
//! (integers emit without a trailing `.0`).

#![forbid(unsafe_code)]

pub use serde::{Error, Map, Value};

/// Serializes a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serializes directly to a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstructs a value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value)
}

/// Parses JSON text into any [`serde::Deserialize`] type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; mirror serde_json's lossy `null`.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.bump() == Some(byte) {
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                byte as char,
                self.pos.saturating_sub(1)
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos.saturating_sub(1)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos.saturating_sub(1)
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = self.parse_hex4()?;
                        let c = if (0xD800..0xDC00).contains(&code) {
                            // Surrogate pair: the next escape must be a
                            // low surrogate.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(Error::msg("unpaired surrogate"));
                            }
                            let low = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(Error::msg(format!(
                                    "invalid low surrogate \\u{low:04x}"
                                )));
                            }
                            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined).ok_or_else(|| Error::msg("bad surrogate"))?
                        } else {
                            char::from_u32(code).ok_or_else(|| Error::msg("bad \\u escape"))?
                        };
                        out.push(c);
                    }
                    other => {
                        return Err(Error::msg(format!(
                            "invalid escape {:?}",
                            other.map(|c| c as char)
                        )))
                    }
                },
                // Raw byte: strings are valid UTF-8 (input is &str), so
                // reassemble multi-byte sequences directly.
                Some(b) => {
                    let start = self.pos - 1;
                    let width = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = start + width;
                    self.pos = end;
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = self
                .bump()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| Error::msg("invalid \\u escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact() {
        let src = r#"{"a":[1,2.5,-3],"b":{"c":null,"d":true},"s":"hi\nthere"}"#;
        let v: Value = from_str(src).unwrap();
        assert_eq!(to_string(&v).unwrap(), src);
    }

    #[test]
    fn pretty_print_reparses() {
        let src = r#"{"objects":[{"position":[1,2],"heading":0.5}]}"#;
        let v: Value = from_str(src).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  "));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""é😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "é😀");
        let raw: Value = from_str("\"héllo\"").unwrap();
        assert_eq!(raw.as_str().unwrap(), "héllo");
    }

    #[test]
    fn integers_emit_without_decimal_point() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3");
        assert_eq!(to_string(&3.25f64).unwrap(), "3.25");
        assert_eq!(to_string(&-0.5f64).unwrap(), "-0.5");
    }

    #[test]
    fn surrogate_pairs() {
        let v: Value = from_str(r#""😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "😀");
        // A high surrogate followed by a non-low-surrogate escape is a
        // parse error, not a panic.
        assert!(from_str::<Value>(r#""\uD800A""#).is_err());
        assert!(from_str::<Value>(r#""\uD800x""#).is_err());
    }

    #[test]
    fn errors_carry_positions() {
        assert!(from_str::<Value>("[1,").is_err());
        assert!(from_str::<Value>("{\"a\" 1}").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("[] trailing").is_err());
    }
}
